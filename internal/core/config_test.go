package core

import (
	"testing"
)

// TestConfigWithDefaults pins every default withDefaults fills in, so an
// accidental change to the paper-derived constants fails loudly.
func TestConfigWithDefaults(t *testing.T) {
	cases := []struct {
		name  string
		in    Config
		check func(t *testing.T, c Config)
	}{
		{
			name: "zero config gets paper defaults",
			in:   Config{},
			check: func(t *testing.T, c Config) {
				if c.ClockMHz != 150 {
					t.Errorf("ClockMHz %v, want 150", c.ClockMHz)
				}
				if c.Lambda != 100 {
					t.Errorf("Lambda %v, want 100 (paper λ)", c.Lambda)
				}
				if c.Eta != 50 {
					t.Errorf("Eta %v, want 50", c.Eta)
				}
				if c.MCFIterations != 50 {
					t.Errorf("MCFIterations %v, want 50 (paper)", c.MCFIterations)
				}
				if c.Rounds != 2 {
					t.Errorf("Rounds %v, want 2", c.Rounds)
				}
				if c.MaxDSPGraphDepth != 8 {
					t.Errorf("MaxDSPGraphDepth %v, want 8", c.MaxDSPGraphDepth)
				}
				if c.BaselineGPIters != 12 {
					t.Errorf("BaselineGPIters %v, want 12", c.BaselineGPIters)
				}
				if c.PrototypeGPIters != 12 {
					t.Errorf("PrototypeGPIters %v, want 12", c.PrototypeGPIters)
				}
				if c.ReplaceGPIters != 6 {
					t.Errorf("ReplaceGPIters %v, want 6", c.ReplaceGPIters)
				}
				if _, ok := c.Identifier.(OracleIdentifier); !ok {
					t.Errorf("Identifier %T, want OracleIdentifier", c.Identifier)
				}
			},
		},
		{
			name: "explicit values survive",
			in: Config{
				ClockMHz: 200, Lambda: 10, Eta: 5, MCFIterations: 7,
				Rounds: 3, MaxDSPGraphDepth: 4,
				BaselineGPIters: 1, PrototypeGPIters: 2, ReplaceGPIters: 3,
				Seed: 99,
			},
			check: func(t *testing.T, c Config) {
				if c.ClockMHz != 200 || c.Lambda != 10 || c.Eta != 5 ||
					c.MCFIterations != 7 || c.Rounds != 3 || c.MaxDSPGraphDepth != 4 ||
					c.BaselineGPIters != 1 || c.PrototypeGPIters != 2 || c.ReplaceGPIters != 3 {
					t.Errorf("explicit values overwritten: %+v", c)
				}
				if c.Seed != 99 {
					t.Errorf("Seed %v, want 99", c.Seed)
				}
			},
		},
		{
			name: "custom identifier kept",
			in:   Config{Identifier: &GCNIdentifier{}},
			check: func(t *testing.T, c Config) {
				if _, ok := c.Identifier.(*GCNIdentifier); !ok {
					t.Errorf("Identifier %T, want *GCNIdentifier", c.Identifier)
				}
			},
		},
		{
			name: "validate level and recorder pass through untouched",
			in:   Config{Validate: ValidateEveryStage},
			check: func(t *testing.T, c Config) {
				if c.Validate != ValidateEveryStage {
					t.Errorf("Validate %v, want ValidateEveryStage", c.Validate)
				}
				if c.Stages != nil {
					t.Errorf("Stages %v, want nil (nil means default recorder)", c.Stages)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.check(t, tc.in.withDefaults())
		})
	}
}
