package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"dsplacer/internal/gen"
	"dsplacer/internal/geom"
	"dsplacer/internal/placer"
	"dsplacer/internal/stage"
)

func TestRunCanceledUpFront(t *testing.T) {
	dev, nl := miniSetup(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, dev, nl, Config{Seed: 1})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err %v does not wrap ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v does not wrap context.Canceled", err)
	}
}

// TestRunCanceledMidFlow cancels the context from inside the prototype
// gate (the corruption hook runs at every gate regardless of level), so
// the flow is provably past its first stage when the cancellation lands at
// the next boundary check.
func TestRunCanceledMidFlow(t *testing.T) {
	dev, nl := miniSetup(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := Config{
		ClockMHz: gen.Small().FreqMHz, MCFIterations: 4, Rounds: 1, Seed: 1,
		corruptHook: func(stage string, pos []geom.Point, siteOf map[int]int) {
			if stage == "prototype" {
				cancel()
			}
		},
	}
	_, err := Run(ctx, dev, nl, cfg)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v does not wrap ErrCanceled + context.Canceled", err)
	}
	want := `stage "extraction"`
	if !contains(err.Error(), want) {
		t.Fatalf("err %q does not name the boundary %s", err, want)
	}
}

// TestRunCanceledInsideAssign cancels during the first legalize gate, so
// the cancellation surfaces from inside the round loop — either the next
// boundary check or the assignment loop itself — wrapped in the same
// sentinel.
func TestRunCanceledInsideAssign(t *testing.T) {
	dev, nl := miniSetup(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := Config{
		ClockMHz: gen.Small().FreqMHz, MCFIterations: 4, Rounds: 2, Seed: 1,
		corruptHook: func(stage string, pos []geom.Point, siteOf map[int]int) {
			if stage == "legalize[0]" {
				cancel()
			}
		},
	}
	_, err := Run(ctx, dev, nl, cfg)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v does not wrap ErrCanceled + context.Canceled", err)
	}
}

func TestRunDeadlineExceeded(t *testing.T) {
	dev, nl := miniSetup(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := Run(ctx, dev, nl, Config{Seed: 1})
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err %v does not wrap ErrCanceled + DeadlineExceeded", err)
	}
}

func TestBaselineAndRSADCanceled(t *testing.T) {
	dev, nl := miniSetup(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunBaseline(ctx, dev, nl, placer.ModeVivado, Config{Seed: 1}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("baseline err %v does not wrap ErrCanceled", err)
	}
	if _, err := RunRSAD(ctx, dev, nl, Config{Seed: 1}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("rsad err %v does not wrap ErrCanceled", err)
	}
}

// TestRunRecordsProfileIntoRecorder pins the cfg.Stages plumbing: a
// successful run deposits the flow profile and hot-path timings into the
// caller's recorder, not the process default.
func TestRunRecordsProfileIntoRecorder(t *testing.T) {
	dev, nl := miniSetup(t)
	rec := stage.NewRecorder()
	stage.Default.Reset()
	cfg := Config{ClockMHz: gen.Small().FreqMHz, MCFIterations: 4, Rounds: 1, Seed: 1, Stages: rec}
	if _, err := Run(context.Background(), dev, nl, cfg); err != nil {
		t.Fatal(err)
	}
	snap := rec.Snapshot()
	for _, want := range []string{"core.total", "core.prototype", "assign.solve", "dspgraph.build"} {
		if snap[want].Count == 0 {
			t.Errorf("recorder missing %q: %v", want, snap)
		}
	}
	if got := snap["assign.solve"].Count; got != 1 {
		t.Errorf("assign.solve count %d, want 1 (one round)", got)
	}
	if leaked := stage.Default.Snapshot(); len(leaked) != 0 {
		t.Errorf("run leaked %d stages into the default recorder: %v", len(leaked), leaked)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
