package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"dsplacer/internal/drc"
	"dsplacer/internal/fpga"
	"dsplacer/internal/gen"
	"dsplacer/internal/geom"
	"dsplacer/internal/netlist"
	"dsplacer/internal/placer"
)

func validateDev(t *testing.T) *fpga.Device {
	t.Helper()
	dev, err := fpga.NewDevice(fpga.Config{Name: "v", Pattern: "CCDCB", Repeats: 3, RegionRows: 2,
		PSWidth: 2, PSHeight: 20})
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

func validateSpec() gen.Spec {
	return gen.Spec{Name: "vmini", LUT: 400, LUTRAM: 24, FF: 500, BRAM: 10, DSP: 24, FreqMHz: 200, Seed: 3}
}

// TestRunEveryStagePassesOnExample: the full DSPlacer flow with the
// strictest gate level must come out clean on a generated design — i.e.
// drc.Check holds at every stage boundary, not just at the end.
func TestRunEveryStagePassesOnExample(t *testing.T) {
	dev := validateDev(t)
	nl, err := gen.Generate(validateSpec(), dev)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{ClockMHz: 200, MCFIterations: 4, Rounds: 2, Seed: 5, Validate: ValidateEveryStage}
	if _, err := Run(context.Background(), dev, nl, cfg); err != nil {
		t.Fatalf("every-stage validation failed on clean flow: %v", err)
	}
	if _, err := RunBaseline(context.Background(), dev, nl, placer.ModeVivado, cfg); err != nil {
		t.Fatalf("every-stage validation failed on vivado baseline: %v", err)
	}
	if _, err := RunRSAD(context.Background(), dev, nl, cfg); err != nil {
		t.Fatalf("every-stage validation failed on rsad flow: %v", err)
	}
}

// TestRunSurfacesInjectedOverfullSite injects an overfull-site corruption
// into a mid-flow artifact and asserts Run fails with a stage-tagged
// wrapped error — not a panic, not silent success.
func TestRunSurfacesInjectedOverfullSite(t *testing.T) {
	dev := validateDev(t)
	nl, err := gen.Generate(validateSpec(), dev)
	if err != nil {
		t.Fatal(err)
	}
	dsps := nl.CellsOfType(netlist.DSP)
	cfg := Config{ClockMHz: 200, MCFIterations: 4, Rounds: 1, Seed: 5, Validate: ValidateEveryStage}
	cfg.corruptHook = func(stage string, pos []geom.Point, siteOf map[int]int) {
		if stage != "replace[0]" || pos == nil {
			return
		}
		// Pile two DSPs onto one site: overfull + overlapping.
		a, b := dsps[0], dsps[1]
		pos[b] = pos[a]
		if siteOf != nil {
			siteOf[b] = siteOf[a]
		}
	}
	_, err = Run(context.Background(), dev, nl, cfg)
	if err == nil {
		t.Fatal("corrupted placement passed validation")
	}
	if !errors.Is(err, ErrDRC) {
		t.Fatalf("errors.Is(err, ErrDRC) = false for %v", err)
	}
	var verr *ValidationError
	if !errors.As(err, &verr) {
		t.Fatalf("errors.As failed for %v", err)
	}
	if verr.Stage != "replace[0]" || verr.Flow != "dsplacer" {
		t.Fatalf("wrong tag: flow %q stage %q", verr.Flow, verr.Stage)
	}
	if verr.Total < 1 || len(verr.Violations) < 1 {
		t.Fatalf("no violations carried: %+v", verr)
	}
}

// TestValidateOffSkipsGates: with the default level the corrupt hook fires
// but nothing checks, preserving the historical behaviour.
func TestValidateOffSkipsGates(t *testing.T) {
	dev := validateDev(t)
	nl, err := gen.Generate(validateSpec(), dev)
	if err != nil {
		t.Fatal(err)
	}
	stages := map[string]int{}
	cfg := Config{ClockMHz: 200, MCFIterations: 4, Rounds: 1, Seed: 5}
	cfg.corruptHook = func(stage string, pos []geom.Point, siteOf map[int]int) { stages[stage]++ }
	if _, err := Run(context.Background(), dev, nl, cfg); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"prototype", "legalize[0]", "replace[0]", "final"} {
		if stages[want] != 1 {
			t.Fatalf("stage %q gated %d times, want 1 (saw %v)", want, stages[want], stages)
		}
	}
}

func TestValidatePlacementOverfullSite(t *testing.T) {
	dev := validateDev(t)
	nl := netlist.New("of")
	a := nl.AddCell("a", netlist.DSP)
	b := nl.AddCell("b", netlist.DSP)
	nl.AddNet("n", a.ID, b.ID)
	site0 := dev.DSPSites()[0]
	pos := []geom.Point{dev.Loc(site0), dev.Loc(site0)}
	err := ValidatePlacement(dev, nl, pos, map[int]int{a.ID: 0, b.ID: 0}, "dsplacer", "final")
	if !errors.Is(err, ErrDRC) {
		t.Fatalf("overfull site not surfaced: %v", err)
	}
	var verr *ValidationError
	if !errors.As(err, &verr) || verr.Stage != "final" {
		t.Fatalf("stage tag lost: %v", err)
	}
	// The %w chain must survive another wrap, as Run applies one.
	wrapped := fmt.Errorf("core: %w", err)
	if !errors.Is(wrapped, ErrDRC) || !errors.As(wrapped, &verr) {
		t.Fatalf("wrapping broke the chain: %v", wrapped)
	}
}

func TestValidationErrorTruncatesReport(t *testing.T) {
	vs := make([]drc.Violation, MaxReportedViolations+5)
	for i := range vs {
		vs[i] = drc.Violation{Rule: "capacity", Cell: i, Msg: "x"}
	}
	err := newValidationError("dsplacer", "final", vs)
	var verr *ValidationError
	if !errors.As(err, &verr) {
		t.Fatal(err)
	}
	if verr.Total != len(vs) || len(verr.Violations) != MaxReportedViolations {
		t.Fatalf("got %d/%d", len(verr.Violations), verr.Total)
	}
	if !strings.Contains(err.Error(), "and 5 more") {
		t.Fatalf("truncation not reported: %v", err)
	}
}

func TestParseValidateLevel(t *testing.T) {
	cases := map[string]ValidateLevel{
		"off": ValidateOff, "none": ValidateOff,
		"final":  ValidateFinal,
		"stages": ValidateEveryStage, "every-stage": ValidateEveryStage, "all": ValidateEveryStage,
	}
	for s, want := range cases {
		got, err := ParseValidateLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseValidateLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseValidateLevel("bogus"); err == nil {
		t.Error("bogus level accepted")
	}
	if ValidateEveryStage.String() != "stages" || ValidateFinal.String() != "final" || ValidateOff.String() != "off" {
		t.Error("ValidateLevel.String mismatch")
	}
}
