package core

import (
	"context"
	"testing"

	"dsplacer/internal/features"
	"dsplacer/internal/fpga"
	"dsplacer/internal/gcn"
	"dsplacer/internal/gen"
	"dsplacer/internal/netlist"
	"dsplacer/internal/placer"
)

func miniSetup(t *testing.T) (*fpga.Device, *netlist.Netlist) {
	t.Helper()
	dev := fpga.NewZCU104()
	nl, err := gen.Generate(gen.Small(), dev)
	if err != nil {
		t.Fatal(err)
	}
	return dev, nl
}

func TestOracleIdentifier(t *testing.T) {
	_, nl := miniSetup(t)
	ids, err := OracleIdentifier{}.Identify(nl)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) == 0 {
		t.Fatal("no datapath DSPs found")
	}
	for _, c := range ids {
		if !nl.Cells[c].DatapathTruth {
			t.Fatalf("cell %d not datapath", c)
		}
	}
}

func TestRunDSPlacerFlow(t *testing.T) {
	dev, nl := miniSetup(t)
	cfg := Config{ClockMHz: gen.Small().FreqMHz, MCFIterations: 8, Rounds: 1, Seed: 1}
	res, err := Run(context.Background(), dev, nl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != "dsplacer" {
		t.Fatalf("flow=%q", res.Flow)
	}
	if len(res.Pos) != nl.NumCells() {
		t.Fatal("positions missing")
	}
	// All DSPs placed on distinct sites.
	seen := map[int]bool{}
	for _, c := range nl.CellsOfType(netlist.DSP) {
		j, ok := res.SiteOfDSP[c]
		if !ok {
			t.Fatalf("DSP %d unplaced", c)
		}
		if seen[j] {
			t.Fatalf("site %d reused", j)
		}
		seen[j] = true
	}
	// Cascade legality survives the full flow.
	sites := dev.DSPSites()
	for _, pair := range nl.CascadePairs() {
		sp := sites[res.SiteOfDSP[pair[0]]]
		ss := sites[res.SiteOfDSP[pair[1]]]
		if sp.Col != ss.Col || ss.Row != sp.Row+1 {
			t.Fatalf("cascade %v broken", pair)
		}
	}
	if res.HPWL <= 0 || res.RoutedWL <= 0 {
		t.Fatalf("metrics missing: %+v", res)
	}
	if res.Profile.Total <= 0 || res.Profile.DSPPlace <= 0 {
		t.Fatalf("profile missing: %+v", res.Profile)
	}
}

func TestRunBaselines(t *testing.T) {
	dev, nl := miniSetup(t)
	cfg := Config{ClockMHz: gen.Small().FreqMHz, Seed: 2}
	for _, mode := range []placer.Mode{placer.ModeVivado, placer.ModeAMF} {
		res, err := RunBaseline(context.Background(), dev, nl, mode, cfg)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.Flow != mode.String() {
			t.Fatalf("flow=%q", res.Flow)
		}
		if res.RoutedWL <= 0 {
			t.Fatalf("%v: no routed wirelength", mode)
		}
	}
}

func TestWeightsRestoredAfterRun(t *testing.T) {
	dev, nl := miniSetup(t)
	before := make([]float64, len(nl.Nets))
	for i, n := range nl.Nets {
		before[i] = n.Weight
	}
	_, err := Run(context.Background(), dev, nl, Config{ClockMHz: 150, MCFIterations: 4, Rounds: 1, TimingDriven: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range nl.Nets {
		if n.Weight != before[i] {
			t.Fatalf("net %d weight leaked: %v vs %v", i, n.Weight, before[i])
		}
	}
}

func TestGCNIdentifierEndToEnd(t *testing.T) {
	dev := fpga.NewZCU104()
	spec := gen.Small()
	nl, err := gen.Generate(spec, dev)
	if err != nil {
		t.Fatal(err)
	}
	fcfg := features.Config{Seed: 5}
	sample, err := BuildSample(nl, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := gcn.Defaults(features.NumFeatures)
	cfg.Epochs = 60
	model, _ := gcn.Train(cfg, []*gcn.Sample{sample}, sample)
	id := &GCNIdentifier{Model: model, FeatureCfg: fcfg}
	got, err := id.Identify(nl)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("GCN identified no datapath DSPs")
	}
	// Training on the same graph should reach high precision/recall.
	truth := map[int]bool{}
	for _, c := range nl.CellsOfType(netlist.DSP) {
		truth[c] = nl.Cells[c].DatapathTruth
	}
	hit := 0
	for _, c := range got {
		if truth[c] {
			hit++
		}
	}
	if float64(hit)/float64(len(got)) < 0.8 {
		t.Fatalf("precision %d/%d too low", hit, len(got))
	}
}

func TestGCNIdentifierNilModel(t *testing.T) {
	_, nl := miniSetup(t)
	id := &GCNIdentifier{}
	if _, err := id.Identify(nl); err == nil {
		t.Fatal("nil model accepted")
	}
}

func TestRunRSADFlow(t *testing.T) {
	dev, nl := miniSetup(t)
	res, err := RunRSAD(context.Background(), dev, nl, Config{ClockMHz: gen.Small().FreqMHz, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != "rsad" {
		t.Fatalf("flow=%q", res.Flow)
	}
	// All DSPs on distinct sites, cascades legal (the lattice guarantees it).
	sites := dev.DSPSites()
	seen := map[int]bool{}
	for _, c := range nl.CellsOfType(netlist.DSP) {
		j, ok := res.SiteOfDSP[c]
		if !ok || seen[j] {
			t.Fatalf("DSP %d bad site", c)
		}
		seen[j] = true
	}
	for _, pair := range nl.CascadePairs() {
		sp := sites[res.SiteOfDSP[pair[0]]]
		ss := sites[res.SiteOfDSP[pair[1]]]
		if sp.Col != ss.Col || ss.Row != sp.Row+1 {
			t.Fatalf("cascade %v broken", pair)
		}
	}
	if res.RoutedWL <= 0 || res.Profile.Total <= 0 {
		t.Fatalf("metrics missing: %+v", res)
	}
}
