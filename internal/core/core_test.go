package core

import (
	"context"
	"errors"
	"testing"

	"dsplacer/internal/features"
	"dsplacer/internal/fpga"
	"dsplacer/internal/gcn"
	"dsplacer/internal/gen"
	"dsplacer/internal/gsp"
	"dsplacer/internal/netlist"
	"dsplacer/internal/placer"
	"dsplacer/internal/stage"
)

func miniSetup(t *testing.T) (*fpga.Device, *netlist.Netlist) {
	t.Helper()
	dev := fpga.NewZCU104()
	nl, err := gen.Generate(gen.Small(), dev)
	if err != nil {
		t.Fatal(err)
	}
	return dev, nl
}

func TestOracleIdentifier(t *testing.T) {
	_, nl := miniSetup(t)
	ids, err := OracleIdentifier{}.Identify(context.Background(), nl)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) == 0 {
		t.Fatal("no datapath DSPs found")
	}
	for _, c := range ids {
		if !nl.Cells[c].DatapathTruth {
			t.Fatalf("cell %d not datapath", c)
		}
	}
}

func TestRunDSPlacerFlow(t *testing.T) {
	dev, nl := miniSetup(t)
	cfg := Config{ClockMHz: gen.Small().FreqMHz, MCFIterations: 8, Rounds: 1, Seed: 1}
	res, err := Run(context.Background(), dev, nl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != "dsplacer" {
		t.Fatalf("flow=%q", res.Flow)
	}
	if len(res.Pos) != nl.NumCells() {
		t.Fatal("positions missing")
	}
	// All DSPs placed on distinct sites.
	seen := map[int]bool{}
	for _, c := range nl.CellsOfType(netlist.DSP) {
		j, ok := res.SiteOfDSP[c]
		if !ok {
			t.Fatalf("DSP %d unplaced", c)
		}
		if seen[j] {
			t.Fatalf("site %d reused", j)
		}
		seen[j] = true
	}
	// Cascade legality survives the full flow.
	sites := dev.DSPSites()
	for _, pair := range nl.CascadePairs() {
		sp := sites[res.SiteOfDSP[pair[0]]]
		ss := sites[res.SiteOfDSP[pair[1]]]
		if sp.Col != ss.Col || ss.Row != sp.Row+1 {
			t.Fatalf("cascade %v broken", pair)
		}
	}
	if res.HPWL <= 0 || res.RoutedWL <= 0 {
		t.Fatalf("metrics missing: %+v", res)
	}
	if res.Profile.Total <= 0 || res.Profile.DSPPlace <= 0 {
		t.Fatalf("profile missing: %+v", res.Profile)
	}
}

func TestRunBaselines(t *testing.T) {
	dev, nl := miniSetup(t)
	cfg := Config{ClockMHz: gen.Small().FreqMHz, Seed: 2}
	for _, mode := range []placer.Mode{placer.ModeVivado, placer.ModeAMF} {
		res, err := RunBaseline(context.Background(), dev, nl, mode, cfg)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.Flow != mode.String() {
			t.Fatalf("flow=%q", res.Flow)
		}
		if res.RoutedWL <= 0 {
			t.Fatalf("%v: no routed wirelength", mode)
		}
	}
}

func TestWeightsRestoredAfterRun(t *testing.T) {
	dev, nl := miniSetup(t)
	before := make([]float64, len(nl.Nets))
	for i, n := range nl.Nets {
		before[i] = n.Weight
	}
	_, err := Run(context.Background(), dev, nl, Config{ClockMHz: 150, MCFIterations: 4, Rounds: 1, TimingDriven: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range nl.Nets {
		if n.Weight != before[i] {
			t.Fatalf("net %d weight leaked: %v vs %v", i, n.Weight, before[i])
		}
	}
}

func TestGCNIdentifierEndToEnd(t *testing.T) {
	dev := fpga.NewZCU104()
	spec := gen.Small()
	nl, err := gen.Generate(spec, dev)
	if err != nil {
		t.Fatal(err)
	}
	fcfg := features.Config{Seed: 5}
	sample, err := BuildSample(nl, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := gcn.Defaults(features.NumFeatures)
	cfg.Epochs = 60
	model, _ := gcn.Train(cfg, []*gcn.Sample{sample}, sample)
	id := &GCNIdentifier{Model: model, FeatureCfg: fcfg}
	got, err := id.Identify(context.Background(), nl)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("GCN identified no datapath DSPs")
	}
	// Training on the same graph should reach high precision/recall.
	truth := map[int]bool{}
	for _, c := range nl.CellsOfType(netlist.DSP) {
		truth[c] = nl.Cells[c].DatapathTruth
	}
	hit := 0
	for _, c := range got {
		if truth[c] {
			hit++
		}
	}
	if float64(hit)/float64(len(got)) < 0.8 {
		t.Fatalf("precision %d/%d too low", hit, len(got))
	}
}

func TestGCNIdentifierNilModel(t *testing.T) {
	_, nl := miniSetup(t)
	id := &GCNIdentifier{}
	if _, err := id.Identify(context.Background(), nl); err == nil {
		t.Fatal("nil model accepted")
	}
}

func TestRunRSADFlow(t *testing.T) {
	dev, nl := miniSetup(t)
	res, err := RunRSAD(context.Background(), dev, nl, Config{ClockMHz: gen.Small().FreqMHz, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != "rsad" {
		t.Fatalf("flow=%q", res.Flow)
	}
	// All DSPs on distinct sites, cascades legal (the lattice guarantees it).
	sites := dev.DSPSites()
	seen := map[int]bool{}
	for _, c := range nl.CellsOfType(netlist.DSP) {
		j, ok := res.SiteOfDSP[c]
		if !ok || seen[j] {
			t.Fatalf("DSP %d bad site", c)
		}
		seen[j] = true
	}
	for _, pair := range nl.CascadePairs() {
		sp := sites[res.SiteOfDSP[pair[0]]]
		ss := sites[res.SiteOfDSP[pair[1]]]
		if sp.Col != ss.Col || ss.Row != sp.Row+1 {
			t.Fatalf("cascade %v broken", pair)
		}
	}
	if res.RoutedWL <= 0 || res.Profile.Total <= 0 {
		t.Fatalf("metrics missing: %+v", res)
	}
}

func TestDistilledIdentifierEndToEnd(t *testing.T) {
	dev := fpga.NewZCU104()
	nl, err := gen.Generate(gen.Small(), dev)
	if err != nil {
		t.Fatal(err)
	}
	fcfg := features.Config{Mode: features.ModeGSP, Seed: 5}
	sample, err := BuildSample(nl, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := gcn.Defaults(features.NumFeatures)
	cfg.Epochs = 60
	teacher, _ := gcn.Train(cfg, []*gcn.Sample{sample}, sample)
	student, err := gsp.Distill(teacher, []*gcn.Sample{sample}, gsp.DistillOptions{})
	if err != nil {
		t.Fatal(err)
	}
	id := &DistilledIdentifier{Model: student, FeatureCfg: fcfg}
	got, err := id.Identify(context.Background(), nl)
	if err != nil {
		t.Fatal(err)
	}
	teacherIDs, err := (&GCNIdentifier{Model: teacher, FeatureCfg: fcfg}).Identify(context.Background(), nl)
	if err != nil {
		t.Fatal(err)
	}
	// The student must track the teacher: ≥80% of the DSP verdicts agree.
	tset := map[int]bool{}
	for _, c := range teacherIDs {
		tset[c] = true
	}
	agree := 0
	for _, c := range got {
		if tset[c] {
			agree++
		}
	}
	if len(got) == 0 || float64(agree)/float64(len(got)) < 0.8 {
		t.Fatalf("student/teacher agreement %d/%d too low", agree, len(got))
	}
	if id.Name() != "distilled" {
		t.Fatalf("name %q", id.Name())
	}
	if _, err := (&DistilledIdentifier{}).Identify(context.Background(), nl); err == nil {
		t.Fatal("nil student model accepted")
	}
}

// Canceling during feature extraction must surface as ErrCanceled from Run,
// tagged with the identify stage — the PR 4 cancellation contract extended
// through the Identifier interface.
func TestRunCanceledDuringIdentify(t *testing.T) {
	dev, nl := miniSetup(t)
	fcfg := features.Config{Mode: features.ModeGSP, Seed: 1}
	sample, err := BuildSample(nl, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	gcfg := gcn.Defaults(features.NumFeatures)
	gcfg.Epochs = 2
	model, _ := gcn.Train(gcfg, []*gcn.Sample{sample}, nil)

	ctx, cancel := context.WithCancel(context.Background())
	cancelAfterPrototype := &cancelingIdentifier{
		inner:  &GCNIdentifier{Model: model, FeatureCfg: fcfg},
		cancel: cancel,
	}
	_, err = Run(ctx, dev, nl, Config{
		ClockMHz: 150, MCFIterations: 2, Rounds: 1, Identifier: cancelAfterPrototype,
	})
	if err == nil {
		t.Fatal("canceled run succeeded")
	}
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v lacks ErrCanceled/context.Canceled", err)
	}
}

// cancelingIdentifier cancels the context right before delegating, so the
// cancellation lands inside the feature-extraction sweeps.
type cancelingIdentifier struct {
	inner  Identifier
	cancel context.CancelFunc
}

func (c *cancelingIdentifier) Name() string { return "canceling" }

func (c *cancelingIdentifier) Identify(ctx context.Context, nl *netlist.Netlist) ([]int, error) {
	c.cancel()
	return c.inner.Identify(ctx, nl)
}

// WithStages must return a stage-scoped copy, leaving the original
// identifier untouched so concurrent jobs stay isolated.
func TestIdentifierWithStagesIsolation(t *testing.T) {
	g := &GCNIdentifier{FeatureCfg: features.Config{Seed: 3}}
	rec := stage.NewRecorder()
	got := g.WithStages(rec)
	if g.FeatureCfg.Stages != nil {
		t.Fatal("WithStages mutated the original GCNIdentifier")
	}
	if got.(*GCNIdentifier).FeatureCfg.Stages != rec {
		t.Fatal("copy lacks the recorder")
	}
	d := &DistilledIdentifier{FeatureCfg: features.Config{Seed: 3}}
	got2 := d.WithStages(rec)
	if d.FeatureCfg.Stages != nil || got2.(*DistilledIdentifier).FeatureCfg.Stages != rec {
		t.Fatal("DistilledIdentifier WithStages broken")
	}
}

// stagedOracleIdentifier extracts features (exercising the extraction
// timers) but answers with ground truth, so the downstream flow stays legal
// regardless of classifier quality.
type stagedOracleIdentifier struct{ fcfg features.Config }

func (s *stagedOracleIdentifier) Name() string { return "staged-oracle" }

func (s *stagedOracleIdentifier) WithStages(rec *stage.Recorder) Identifier {
	c := *s
	c.fcfg.Stages = rec
	return &c
}

func (s *stagedOracleIdentifier) Identify(ctx context.Context, nl *netlist.Netlist) ([]int, error) {
	if _, err := features.ExtractContext(ctx, nl, s.fcfg); err != nil {
		return nil, err
	}
	return OracleIdentifier{}.Identify(ctx, nl)
}

// WithFeatureMode must return a mode-scoped copy, leaving the shared
// identifier's default backend untouched.
func TestIdentifierWithFeatureModeIsolation(t *testing.T) {
	g := &GCNIdentifier{FeatureCfg: features.Config{Mode: features.ModeExact}}
	got := g.WithFeatureMode(features.ModeGSP)
	if g.FeatureCfg.Mode != features.ModeExact {
		t.Fatal("WithFeatureMode mutated the original GCNIdentifier")
	}
	if got.(*GCNIdentifier).FeatureCfg.Mode != features.ModeGSP {
		t.Fatal("copy lacks the requested mode")
	}
	d := &DistilledIdentifier{FeatureCfg: features.Config{Mode: features.ModeExact}}
	got2 := d.WithFeatureMode(features.ModeSampled)
	if d.FeatureCfg.Mode != features.ModeExact ||
		got2.(*DistilledIdentifier).FeatureCfg.Mode != features.ModeSampled {
		t.Fatal("DistilledIdentifier WithFeatureMode broken")
	}
}

// modeProbeIdentifier records the mode it ran under so tests can observe
// whether Run applied Config.FeatureMode.
type modeProbeIdentifier struct {
	fcfg features.Config
	ran  *features.Mode
}

func (p *modeProbeIdentifier) Name() string { return "mode-probe" }

func (p *modeProbeIdentifier) WithFeatureMode(m features.Mode) Identifier {
	c := *p
	c.fcfg.Mode = m
	return &c
}

func (p *modeProbeIdentifier) Identify(ctx context.Context, nl *netlist.Netlist) ([]int, error) {
	*p.ran = p.fcfg.Mode
	return OracleIdentifier{}.Identify(ctx, nl)
}

// Run must thread Config.FeatureMode into identifiers that support it, and
// ModeAuto must leave the identifier's own default alone.
func TestRunAppliesFeatureMode(t *testing.T) {
	dev, nl := miniSetup(t)
	var ran features.Mode
	base := Config{ClockMHz: 150, MCFIterations: 2, Rounds: 1,
		Identifier: &modeProbeIdentifier{fcfg: features.Config{Mode: features.ModeExact}, ran: &ran}}

	cfg := base
	cfg.FeatureMode = features.ModeGSP
	if _, err := Run(context.Background(), dev, nl, cfg); err != nil {
		t.Fatal(err)
	}
	if ran != features.ModeGSP {
		t.Fatalf("identifier ran with mode %v, want ModeGSP", ran)
	}

	if _, err := Run(context.Background(), dev, nl, base); err != nil {
		t.Fatal(err)
	}
	if ran != features.ModeExact {
		t.Fatalf("ModeAuto overrode the identifier default: ran %v", ran)
	}
}

// The features.centrality and gsp.filter timers must land in the run's own
// recorder when the flow uses a feature-extracting identifier: Run hands
// cfg.Stages to identifiers that support WithStages.
func TestRunRecordsCentralityStage(t *testing.T) {
	dev, nl := miniSetup(t)
	rec := stage.NewRecorder()
	_, err := Run(context.Background(), dev, nl, Config{
		ClockMHz: 150, MCFIterations: 2, Rounds: 1,
		Identifier: &stagedOracleIdentifier{fcfg: features.Config{Mode: features.ModeGSP, Seed: 2}},
		Stages:     rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := rec.Snapshot()
	for _, name := range []string{"features.centrality", "gsp.filter", "core.extraction"} {
		if snap[name].Count == 0 {
			t.Fatalf("stage %q not recorded; got %v", name, snap)
		}
	}
}
