// Stage-boundary DRC enforcement: the flows in this package hand their
// result to vendor tooling as constraints, so a silently corrupt
// intermediate (an overfull site, a broken cascade) poisons everything
// downstream. Config.Validate turns drc.Check into a gate at the stage
// boundaries of Run/RunBaseline/RunRSAD, with violations surfaced as
// structured, stage-tagged errors instead of being visible only to
// integration tests.

package core

import (
	"errors"
	"fmt"

	"dsplacer/internal/drc"
	"dsplacer/internal/fpga"
	"dsplacer/internal/geom"
	"dsplacer/internal/netlist"
)

// ValidateLevel selects how much of the flow is gated by drc.Check.
type ValidateLevel int

const (
	// ValidateOff performs no DRC gating (the historical behaviour).
	ValidateOff ValidateLevel = iota
	// ValidateFinal checks only the flow's final placement.
	ValidateFinal
	// ValidateEveryStage additionally checks every intermediate stage
	// boundary: prototype placement, each assignment+legalization round and
	// each incremental re-placement.
	ValidateEveryStage
)

func (l ValidateLevel) String() string {
	switch l {
	case ValidateOff:
		return "off"
	case ValidateFinal:
		return "final"
	case ValidateEveryStage:
		return "stages"
	}
	return fmt.Sprintf("ValidateLevel(%d)", int(l))
}

// ParseValidateLevel converts a -validate flag value to a level.
func ParseValidateLevel(s string) (ValidateLevel, error) {
	switch s {
	case "off", "none":
		return ValidateOff, nil
	case "final":
		return ValidateFinal, nil
	case "stages", "every-stage", "all":
		return ValidateEveryStage, nil
	}
	return ValidateOff, fmt.Errorf("core: unknown validate level %q (want off, final or stages)", s)
}

// ErrDRC is the sentinel matched by errors.Is for every stage-boundary DRC
// failure; errors.As with *ValidationError recovers the stage and the
// violation sample.
var ErrDRC = errors.New("placement violates design rules")

// MaxReportedViolations bounds how many violations a ValidationError
// carries; Total always records the full count.
const MaxReportedViolations = 8

// ValidationError reports a stage boundary whose artifact failed drc.Check.
type ValidationError struct {
	Flow       string          // "dsplacer", "vivado", "amf", "rsad"
	Stage      string          // e.g. "prototype", "legalize[0]", "final"
	Total      int             // total violation count
	Violations []drc.Violation // first MaxReportedViolations of them
}

func (e *ValidationError) Error() string {
	msg := fmt.Sprintf("%s flow, stage %q: %d DRC violation(s)", e.Flow, e.Stage, e.Total)
	for _, v := range e.Violations {
		msg += "\n  " + v.String()
	}
	if e.Total > len(e.Violations) {
		msg += fmt.Sprintf("\n  ... and %d more", e.Total-len(e.Violations))
	}
	return msg
}

// Unwrap lets errors.Is(err, ErrDRC) match wrapped validation failures.
func (e *ValidationError) Unwrap() error { return ErrDRC }

// newValidationError samples vs into a stage-tagged error (nil when clean).
func newValidationError(flow, stage string, vs []drc.Violation) error {
	if len(vs) == 0 {
		return nil
	}
	n := len(vs)
	if n > MaxReportedViolations {
		n = MaxReportedViolations
	}
	return &ValidationError{Flow: flow, Stage: stage, Total: len(vs), Violations: vs[:n]}
}

// ValidatePlacement runs the full design-rule check on a placement and
// returns a stage-tagged *ValidationError (wrapping ErrDRC) when it fails.
// siteOf may be nil to check position rules only.
func ValidatePlacement(dev *fpga.Device, nl *netlist.Netlist, pos []geom.Point, siteOf map[int]int, flow, stage string) error {
	return newValidationError(flow, stage, drc.Check(dev, nl, pos, siteOf))
}

// ValidateAssignment checks a (possibly partial) DSP site assignment the
// same way, for the stage boundary after assignment+legalization where only
// the datapath DSPs carry sites.
func ValidateAssignment(dev *fpga.Device, nl *netlist.Netlist, siteOf map[int]int, flow, stage string) error {
	return newValidationError(flow, stage, drc.CheckAssignment(dev, nl, siteOf))
}

// gater carries one flow's validation context through its stage boundaries.
type gater struct {
	level ValidateLevel
	dev   *fpga.Device
	nl    *netlist.Netlist
	flow  string
	// corrupt is the test-only fault-injection hook (Config.corruptHook).
	corrupt func(stage string, pos []geom.Point, siteOf map[int]int)
}

// placement gates a full placement at a stage boundary; need is the minimum
// level at which this gate is active.
func (g *gater) placement(need ValidateLevel, stage string, pos []geom.Point, siteOf map[int]int) error {
	if g.corrupt != nil {
		g.corrupt(stage, pos, siteOf)
	}
	if g.level < need {
		return nil
	}
	if err := ValidatePlacement(g.dev, g.nl, pos, siteOf, g.flow, stage); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	return nil
}

// assignment gates a DSP site assignment at a stage boundary.
func (g *gater) assignment(need ValidateLevel, stage string, siteOf map[int]int) error {
	if g.corrupt != nil {
		g.corrupt(stage, nil, siteOf)
	}
	if g.level < need {
		return nil
	}
	if err := ValidateAssignment(g.dev, g.nl, siteOf, g.flow, stage); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	return nil
}
