// Cancellation contract: Run/RunBaseline/RunRSAD consult their context at
// every stage boundary (and assign.Solve consults it inside the
// linearization loop), so a canceled or deadline-exceeded placement stops
// within one stage / one assign iteration. All such early returns wrap the
// ErrCanceled sentinel — the cancellation analogue of the ErrDRC contract —
// and also keep the originating context error in the chain, so callers can
// distinguish explicit cancellation (context.Canceled) from a blown
// deadline (context.DeadlineExceeded) with errors.Is.

package core

import (
	"context"
	"errors"
	"fmt"
)

// ErrCanceled is the sentinel every cancellation-driven early return wraps;
// match it with errors.Is. The originating context error stays in the chain.
var ErrCanceled = errors.New("placement canceled")

// checkCtx gates one stage boundary on the context.
func checkCtx(ctx context.Context, flow, stage string) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: %s flow canceled at stage %q: %w: %w", flow, stage, ErrCanceled, err)
	}
	return nil
}

// stageErr wraps a stage's error, attaching ErrCanceled when the failure
// was the context's doing (e.g. assign.Solve observing cancellation
// mid-loop) so errors.Is(err, ErrCanceled) holds end to end.
func stageErr(what string, err error) error {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("core: %s: %w: %w", what, ErrCanceled, err)
	}
	return fmt.Errorf("core: %s: %w", what, err)
}
