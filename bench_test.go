// Benchmark harness: one testing.B per table and figure of the paper's
// evaluation, plus the DESIGN.md ablations. The benches run the real
// regeneration code paths on the ~1/16-scale mini benchmarks so that
// `go test -bench=.` terminates in minutes; `go run ./cmd/experiments -all`
// runs the identical harness at full Table-I scale (the numbers recorded in
// EXPERIMENTS.md come from that command).
package dsplacer

import (
	"context"
	"io"
	"testing"

	"dsplacer/internal/assign"
	"dsplacer/internal/core"
	"dsplacer/internal/dspgraph"
	"dsplacer/internal/experiments"
	"dsplacer/internal/features"
	"dsplacer/internal/fpga"
	"dsplacer/internal/gcn"
	"dsplacer/internal/gen"
	"dsplacer/internal/netlist"
	"dsplacer/internal/placer"
)

func benchSuite() *experiments.Suite {
	return experiments.NewSuite(experiments.MiniSpecs()[:3])
}

func benchCfg() experiments.TableIIConfig {
	return experiments.TableIIConfig{MCFIterations: 8, Rounds: 1, Lambda: 100, Seed: 1}
}

// BenchmarkTableI regenerates the benchmark-statistics table (Table I).
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(experiments.MiniSpecs())
		if err := s.TableI(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableII_Vivado measures the Vivado-like baseline flow column.
func BenchmarkTableII_Vivado(b *testing.B) {
	benchFlowRow(b, func(s *experiments.Suite, spec gen.Spec) error {
		row, err := s.RunTableIIRow(spec, benchCfg())
		if err == nil && row.Vivado.HPWL <= 0 {
			b.Fatal("empty vivado metrics")
		}
		return err
	})
}

// BenchmarkTableII regenerates one full Table-II row (all three flows).
func BenchmarkTableII(b *testing.B) {
	benchFlowRow(b, func(s *experiments.Suite, spec gen.Spec) error {
		_, err := s.RunTableIIRow(spec, benchCfg())
		return err
	})
}

func benchFlowRow(b *testing.B, f func(*experiments.Suite, gen.Spec) error) {
	b.Helper()
	s := benchSuite()
	spec := s.Specs[0]
	if _, err := s.Netlist(spec); err != nil { // generation outside the loop
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f(s, spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGlobalPlace measures the analytical global-placement engines on
// one mini benchmark: cold placement from scratch and the warm incremental
// re-place (the flow's hot path — every DSPlacer round after the prototype
// re-places against the newly fixed datapath DSP sites). Each sub-benchmark
// reports the legal HPWL it achieves so speed is never read apart from
// quality.
func BenchmarkGlobalPlace(b *testing.B) {
	s := benchSuite()
	nl, err := s.Netlist(s.Specs[0])
	if err != nil {
		b.Fatal(err)
	}
	// A shared cold prototype gives both warm arms the same starting point.
	proto, err := placer.Place(s.Dev, nl, placer.Options{Seed: 1, GP: placer.ModeElectrostatic})
	if err != nil {
		b.Fatal(err)
	}
	engines := []struct {
		name string
		gp   placer.GPMode
	}{
		{"electrostatic", placer.ModeElectrostatic},
		{"quadratic", placer.ModeQuadratic},
	}
	for _, eng := range engines {
		b.Run("cold/"+eng.name, func(b *testing.B) {
			benchPlace(b, s, nl, placer.Options{Seed: 3, GP: eng.gp})
		})
	}
	for _, eng := range engines {
		b.Run("warm/"+eng.name, func(b *testing.B) {
			benchPlace(b, s, nl, placer.Options{
				Seed: 3, GP: eng.gp, Warm: proto.Pos, FixedSites: proto.SiteOfDSP,
			})
		})
	}
}

// benchPlace times the global-placement phase alone (the engine under
// comparison), then — outside the timer — legalizes the identical positions
// via Place and reports the resulting legal HPWL, so the ns/op of the two
// engines is read against the quality their positions actually deliver.
func benchPlace(b *testing.B, s *experiments.Suite, nl *netlist.Netlist, opt placer.Options) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := placer.GlobalPlace(context.Background(), s.Dev, nl, opt); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	res, err := placer.Place(s.Dev, nl, opt)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.HPWL, "legal-hpwl")
}

// BenchmarkDSPGraphBuild measures the §III-B DSP-graph construction (the
// per-DSP IDDFS sweep) on one mini benchmark — the tentpole hot path of the
// parallel-build work. ReportAllocs tracks the per-edge counter and scratch
// reuse wins.
func BenchmarkDSPGraphBuild(b *testing.B) {
	s := benchSuite()
	nl, err := s.Netlist(s.Specs[1])
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dg := dspgraph.Build(nl, dspgraph.Config{})
		if len(dg.Nodes) == 0 {
			b.Fatal("empty DSP graph")
		}
	}
}

// BenchmarkAssignIteration measures one linearized min-cost-flow assignment
// iteration (candidate generation + cost rows + flow solve) on one mini
// benchmark's datapath DSPs.
func BenchmarkAssignIteration(b *testing.B) {
	s := benchSuite()
	nl, err := s.Netlist(s.Specs[1])
	if err != nil {
		b.Fatal(err)
	}
	ids, err := core.OracleIdentifier{}.Identify(context.Background(), nl)
	if err != nil {
		b.Fatal(err)
	}
	dg := dspgraph.Build(nl, dspgraph.Config{})
	keep := make(map[int]bool, len(ids))
	for _, c := range ids {
		keep[c] = true
	}
	p := &assign.Problem{
		Device: s.Dev, Netlist: nl,
		Graph: dg.Filter(func(id int) bool { return keep[id] }),
		DSPs:  ids, Pos: syntheticPositions(s.Dev, nl), Iterations: 1,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := assign.Solve(context.Background(), p)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.SiteOf) != len(ids) {
			b.Fatalf("assigned %d of %d", len(res.SiteOf), len(ids))
		}
	}
}

// BenchmarkFig7a regenerates the GCN-vs-SVM leave-one-out comparison.
func BenchmarkFig7a(b *testing.B) {
	s := benchSuite()
	for _, spec := range s.Specs {
		if _, err := s.Netlist(spec); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig7a(io.Discard, experiments.Fig7Config{Epochs: 15, Seed: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7b regenerates the train/test accuracy curve.
func BenchmarkFig7b(b *testing.B) {
	s := benchSuite()
	for _, spec := range s.Specs {
		if _, err := s.Netlist(spec); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig7b(io.Discard, experiments.Fig7Config{Epochs: 15, Seed: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8 regenerates the runtime-breakdown profile.
func BenchmarkFig8(b *testing.B) {
	s := benchSuite()
	for _, spec := range s.Specs[:2] {
		if _, err := s.Netlist(spec); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Fig8(io.Discard, benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9 regenerates the three-flow layout visualization.
func BenchmarkFig9(b *testing.B) {
	s := benchSuite()
	if _, err := s.Netlist(s.Specs[0]); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Fig9(io.Discard, "", benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationLambda sweeps the datapath penalty.
func BenchmarkAblationLambda(b *testing.B) {
	s := benchSuite()
	spec := s.Specs[1]
	if _, err := s.Netlist(spec); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.AblationLambda(io.Discard, spec, []float64{0, 100}, benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMCFIterations sweeps the assignment iteration budget.
func BenchmarkAblationMCFIterations(b *testing.B) {
	s := benchSuite()
	spec := s.Specs[1]
	if _, err := s.Netlist(spec); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.AblationMCFIterations(io.Discard, spec, []int{1, 8}, benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationIdentifier compares oracle filtering vs placing all DSPs.
func BenchmarkAblationIdentifier(b *testing.B) {
	s := benchSuite()
	spec := s.Specs[1]
	if _, err := s.Netlist(spec); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.AblationIdentifier(io.Discard, spec, benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationLegalization measures MCF + cascade legalization alone.
func BenchmarkAblationLegalization(b *testing.B) {
	s := benchSuite()
	spec := s.Specs[1]
	if _, err := s.Netlist(spec); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.AblationLegalization(io.Discard, spec, benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFeatures measures the three feature-extraction backends on a
// generated workload above the exact/sampled auto-switch threshold (~7.5k
// cells, ZCU104-class DSP count). Each arm reports ns/op for the full
// extraction plus an `agreement` metric: the fraction of DSPs on which a
// GCN trained on that arm's features issues the same datapath verdict as
// the exact-feature GCN (models trained outside the timer, identical
// hyperparameters and seeds).
func BenchmarkFeatures(b *testing.B) {
	spec := gen.Spec{Name: "feat-bench", LUT: 4000, LUTRAM: 300, FF: 3000,
		BRAM: 60, DSP: 160, FreqMHz: 200, Seed: 11}
	dev := fpga.NewZCU104()
	nl, err := gen.Generate(spec, dev)
	if err != nil {
		b.Fatal(err)
	}
	featCfg := func(m features.Mode) features.Config {
		return features.Config{Mode: m, Seed: 5}
	}
	train := func(m features.Mode) (*gcn.Model, []int) {
		sample, err := core.BuildSample(nl, featCfg(m))
		if err != nil {
			b.Fatal(err)
		}
		gcfg := gcn.Defaults(features.NumFeatures)
		gcfg.Epochs = 30
		model, _ := gcn.Train(gcfg, []*gcn.Sample{sample}, nil)
		classes, _ := model.Predict(sample)
		return model, classes
	}
	_, refClasses := train(features.ModeExact)

	for _, mode := range []features.Mode{features.ModeExact, features.ModeSampled, features.ModeGSP} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			cfg := featCfg(mode)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := features.ExtractContext(context.Background(), nl, cfg); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			_, classes := train(mode)
			agree := 0
			for i := range classes {
				if classes[i] == refClasses[i] {
					agree++
				}
			}
			b.ReportMetric(float64(agree)/float64(len(classes)), "agreement")
		})
	}
}
