// Command sweep grids over DSPlacer hyperparameters (λ, η, MCF iterations,
// rounds) on one benchmark and emits CSV for plotting — the tool behind the
// "λ=100 based on the experiment" style tuning of §V-C.
//
// Usage:
//
//	sweep -netlist design.json -freq 150 -lambdas 0,10,100,1000 -etas 50
//	sweep -mini SkyNet -lambdas 0,100 -iters 5,20,50 > sweep.csv
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dsplacer/internal/cli"
	"dsplacer/internal/core"
	"dsplacer/internal/experiments"
	"dsplacer/internal/fpga"
	"dsplacer/internal/netlist"
)

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	path := flag.String("netlist", "", "JSON netlist to sweep on")
	mini := flag.String("mini", "", "use the mini variant of this Table-I benchmark instead (e.g. SkyNet)")
	freq := flag.Float64("freq", 150, "clock frequency in MHz (ignored with -mini)")
	lambdas := flag.String("lambdas", "100", "comma-separated λ values")
	etas := flag.String("etas", "50", "comma-separated η values")
	iters := flag.String("iters", "50", "comma-separated MCF iteration budgets")
	rounds := flag.Int("rounds", 1, "incremental rounds")
	common := cli.RegisterCommon(flag.CommandLine, 1, "final")
	flag.Parse()
	stop := common.Start()
	defer stop()

	dev := fpga.NewZCU104()
	var nl *netlist.Netlist
	var err error
	clock := *freq
	switch {
	case *mini != "":
		suite := experiments.NewSuite(experiments.MiniSpecs())
		for _, spec := range suite.Specs {
			if spec.Name == "mini-"+*mini || spec.Name == *mini {
				nl, err = suite.Netlist(spec)
				clock = spec.FreqMHz
				break
			}
		}
		if nl == nil && err == nil {
			cli.Fatal(fmt.Errorf("no mini benchmark matches %q", *mini))
		}
	case *path != "":
		nl, err = netlist.LoadFile(*path)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		cli.Fatal(err)
	}

	ls, err := parseFloats(*lambdas)
	if err != nil {
		cli.Fatal(err)
	}
	es, err := parseFloats(*etas)
	if err != nil {
		cli.Fatal(err)
	}
	is, err := parseInts(*iters)
	if err != nil {
		cli.Fatal(err)
	}

	fmt.Println("lambda,eta,mcf_iters,rounds,wns_ns,tns_ns,hpwl,routed_wl,runtime_s")
	for _, l := range ls {
		for _, e := range es {
			for _, it := range is {
				cfg := core.Config{
					ClockMHz: clock, Lambda: nz(l), Eta: nz(e),
					MCFIterations: it, Rounds: *rounds, Seed: common.Seed,
					Validate: common.Validate(),
				}
				res, err := core.Run(context.Background(), dev, nl, cfg)
				if err != nil {
					cli.Fatal(fmt.Errorf("λ=%v η=%v iters=%d: %w", l, e, it, err))
				}
				fmt.Printf("%g,%g,%d,%d,%.4f,%.4f,%.0f,%.0f,%.2f\n",
					l, e, it, *rounds, res.WNS, res.TNS, res.HPWL, res.RoutedWL,
					res.Profile.Total.Seconds())
			}
		}
	}
}

// nz maps 0 to a tiny value so "0" in a sweep really disables the term
// (core treats exact zero as "use default").
func nz(v float64) float64 {
	if v == 0 {
		return 1e-9
	}
	return v
}
