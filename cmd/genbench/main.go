// Command genbench emits the Table-I benchmark netlists (or the miniature
// variants, or the topology-family presets) as JSON files ready for
// cmd/dsplacer.
//
// Usage:
//
//	genbench [-out DIR] [-mini] [-families] [-device NAME] [-only NAME]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dsplacer/internal/cli"
	"dsplacer/internal/experiments"
	"dsplacer/internal/fpga"
	"dsplacer/internal/gen"
	"dsplacer/internal/verilog"
)

func main() {
	out := flag.String("out", ".", "output directory")
	mini := flag.Bool("mini", false, "emit the ~1/16-scale mini variants")
	families := flag.Bool("families", false, "emit the topology-family presets (cnn, sparse-systolic, memmapped, multi-accel)")
	device := flag.String("device", "zcu104", "target device from the registry: "+strings.Join(fpga.Names(), ", "))
	only := flag.String("only", "", "emit only the named benchmark")
	emitVerilog := flag.Bool("verilog", false, "also emit structural Verilog next to each JSON netlist")
	flag.Parse()

	specs := gen.TableI()
	switch {
	case *families && *mini:
		cli.Fatal(fmt.Errorf("-families and -mini are mutually exclusive"))
	case *families:
		specs = gen.FamilySpecs()
	case *mini:
		specs = experiments.MiniSpecs()
	}
	dev, err := fpga.Lookup(*device)
	if err != nil {
		cli.Fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		cli.Fatal(err)
	}
	emitted := 0
	for _, spec := range specs {
		if *only != "" && spec.Name != *only {
			continue
		}
		nl, err := gen.Generate(spec, dev)
		if err != nil {
			cli.Fatal(fmt.Errorf("%s: %w", spec.Name, err))
		}
		path := filepath.Join(*out, spec.Name+".json")
		if err := nl.SaveFile(path); err != nil {
			cli.Fatal(fmt.Errorf("%s: %w", path, err))
		}
		st := nl.Stats()
		fmt.Printf("%-16s → %s (%d cells, %d nets, %d DSP, %d macros, %.1f MHz)\n",
			spec.Name, path, nl.NumCells(), st.Nets, st.DSP, st.Macros, spec.FreqMHz)
		if *emitVerilog {
			vpath := filepath.Join(*out, spec.Name+".v")
			if err := verilog.SaveFile(vpath, nl); err != nil {
				cli.Fatal(fmt.Errorf("%s: %w", vpath, err))
			}
			fmt.Printf("%-16s → %s\n", "", vpath)
		}
		emitted++
	}
	if emitted == 0 {
		cli.Fatal(fmt.Errorf("no benchmark matched -only=%q", *only))
	}
}
