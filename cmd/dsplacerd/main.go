// Command dsplacerd serves the placement flows over HTTP: clients submit
// netlists as JSON jobs, poll for results, cancel mid-flight, and scrape
// Prometheus metrics (DESIGN.md §11).
//
// Usage:
//
//	dsplacerd -addr :8080 -workers 2 -queue-depth 64 -cache-size 64 -ttl 10m
//	dsplacerd -tenant-quota 16 -tenant-weights "interactive=3,batch=1"
//	dsplacerd -cache-shards 8 -cache-listen :7070 -cache-peers host2:7070
//	dsplacerd -smoke          # in-process self-test: serve, place, verify
//	dsplacerd -smoke-cluster  # two-daemon shared-cache self-test
//
// Endpoints:
//
//	POST   /v1/jobs              submit  {"netlist": {...}, "flow": "dsplacer", ...}
//	GET    /v1/jobs/{id}         poll
//	GET    /v1/jobs/{id}/events  progress stream (SSE; ?poll=1 long-polls)
//	DELETE /v1/jobs/{id}         cancel
//	GET    /healthz              liveness (503 while draining)
//	GET    /metrics              Prometheus text
//
// With -cache-listen the daemon serves its result cache to peers over the
// cache/remote TCP protocol, and with -cache-peers it consults (and writes
// through to) other daemons' caches, so a cluster shares one logical
// placement cache (DESIGN.md §14).
//
// SIGTERM/SIGINT starts a graceful drain: new submissions get 503 while
// queued and running jobs finish (bounded by -drain-grace, after which
// their contexts are canceled).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"dsplacer/internal/cache"
	"dsplacer/internal/cache/remote"
	"dsplacer/internal/cli"
	"dsplacer/internal/costmodel"
	"dsplacer/internal/fpga"
	"dsplacer/internal/gen"
	"dsplacer/internal/jobs"
	"dsplacer/internal/server"
)

// parseTenantWeights parses "acme=2,batch=1" into a weight map.
func parseTenantWeights(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	weights := make(map[string]int)
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad tenant weight %q (want name=weight)", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad tenant weight %q: weight must be a positive integer", part)
		}
		weights[name] = w
	}
	return weights, nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	device := flag.String("device", "zcu104", "default target device for jobs that name none: "+strings.Join(fpga.Names(), ", "))
	workers := flag.Int("workers", 2, "concurrent placement jobs")
	queueDepth := flag.Int("queue-depth", 64, "max queued jobs across tenants before 429")
	tenantQuota := flag.Int("tenant-quota", 0, "max queued jobs per tenant (0 = queue-depth)")
	tenantWeights := flag.String("tenant-weights", "", `fair-share weights, e.g. "interactive=3,batch=1"`)
	cacheSize := flag.Int("cache-size", 64, "result cache capacity (entries)")
	cacheShards := flag.Int("cache-shards", 1, "shard the result cache N ways (1 = single LRU)")
	cacheListen := flag.String("cache-listen", "", "serve the local result cache to peer daemons on this address")
	cachePeers := flag.String("cache-peers", "", "comma-separated peer cache addresses to share placements with")
	costModelPath := flag.String("cost-model", "", "trained placement-cost model (cmd/train -cost); jobs use it by default and may opt out per request with cost_model: \"off\"")
	ttl := flag.Duration("ttl", 10*time.Minute, "terminal job retention before eviction")
	drainGrace := flag.Duration("drain-grace", time.Minute, "max wait for in-flight jobs on shutdown")
	smoke := flag.Bool("smoke", false, "run the in-process smoke test and exit")
	smokeCluster := flag.Bool("smoke-cluster", false, "run the two-daemon shared-cache smoke test and exit")
	common := cli.RegisterCommon(flag.CommandLine, 1, "off")
	flag.Parse()
	stop := common.Start()
	defer stop()

	if *smokeCluster {
		if err := runClusterSmoke(); err != nil {
			stop()
			cli.Fatal(err)
		}
		fmt.Println("cluster smoke test passed")
		return
	}

	weights, err := parseTenantWeights(*tenantWeights)
	if err != nil {
		stop()
		cli.Fatal(err)
	}
	dev, err := fpga.Lookup(*device)
	if err != nil {
		stop()
		cli.Fatal(err)
	}
	var costModel *costmodel.Model
	if *costModelPath != "" {
		costModel, err = costmodel.LoadFile(*costModelPath)
		if err != nil {
			stop()
			cli.Fatal(err)
		}
		log.Printf("dsplacerd cost model %s loaded from %s", costModel.Fingerprint(), *costModelPath)
	}

	// The local store (optionally sharded) is what -cache-listen serves;
	// the server sees it wrapped with the peers so lookups fall back to and
	// fills write through to the rest of the cluster.
	var local cache.Store
	if *cacheShards > 1 {
		local = cache.NewSharded(*cacheShards, *cacheSize)
	} else {
		local = cache.NewLRU(*cacheSize)
	}
	store := local
	if *cacheListen != "" {
		ln, err := remote.Listen(*cacheListen, local)
		if err != nil {
			stop()
			cli.Fatal(err)
		}
		defer ln.Close()
		log.Printf("dsplacerd cache served to peers on %s", ln.Addr())
	}
	if *cachePeers != "" {
		var peers []cache.Store
		for _, addr := range strings.Split(*cachePeers, ",") {
			if addr = strings.TrimSpace(addr); addr != "" {
				peers = append(peers, remote.Dial(addr, 2*time.Second))
			}
		}
		if len(peers) > 0 {
			store = &cache.Peered{Local: local, Peers: peers}
		}
	}

	srv := server.New(server.Config{
		Device: dev,
		Jobs: jobs.Config{
			Workers: *workers, QueueDepth: *queueDepth, ResultTTL: *ttl,
			TenantQuota: *tenantQuota, TenantWeights: weights,
		},
		Cache:     store,
		CostModel: costModel,
	})

	if *smoke {
		if err := runSmoke(srv); err != nil {
			stop()
			cli.Fatal(err)
		}
		fmt.Println("smoke test passed")
		return
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("dsplacerd listening on %s (%d workers, queue %d)", *addr, *workers, *queueDepth)
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	select {
	case err := <-errCh:
		stop()
		cli.Fatal(err)
	case <-ctx.Done():
	}

	log.Printf("dsplacerd draining (grace %s)", *drainGrace)
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drainGrace)
	defer cancelDrain()
	// Order matters: drain the scheduler first so in-flight jobs finish
	// while the listener still answers polls, then close the listener.
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("dsplacerd drain incomplete: %v", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Printf("dsplacerd http shutdown: %v", err)
	}
	log.Printf("dsplacerd stopped")
}

// runSmoke exercises the whole service over real HTTP on a loopback port:
// it submits the quickstart netlist with final DRC gating, polls the job to
// completion, and checks /metrics reports the finished job. Exercised by
// `make serve-smoke` in CI.
func runSmoke(srv *server.Server) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	base := "http://" + ln.Addr().String()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		httpSrv.Shutdown(ctx)
	}()

	nl, err := gen.Generate(gen.Small(), fpga.NewZCU104())
	if err != nil {
		return fmt.Errorf("smoke: generate: %w", err)
	}
	nlJSON, err := json.Marshal(nl)
	if err != nil {
		return err
	}
	body, err := json.Marshal(map[string]any{
		"netlist":  json.RawMessage(nlJSON),
		"validate": "final", // a done job therefore implies a DRC-clean result
		"seed":     1,
	})
	if err != nil {
		return err
	}

	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		return fmt.Errorf("smoke: submit: %w", err)
	}
	var sub struct{ ID, State, Error string }
	err = json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("smoke: decode submit response: %w", err)
	}
	if resp.StatusCode != http.StatusAccepted || sub.ID == "" {
		return fmt.Errorf("smoke: submit status %d (%s)", resp.StatusCode, sub.Error)
	}

	deadline := time.Now().Add(2 * time.Minute)
	var doc server.JobDoc
	for {
		resp, err := http.Get(base + "/v1/jobs/" + sub.ID)
		if err != nil {
			return fmt.Errorf("smoke: poll: %w", err)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return fmt.Errorf("smoke: poll status %d", resp.StatusCode)
		}
		err = json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("smoke: decode job: %w", err)
		}
		if doc.State == "done" || doc.State == "failed" || doc.State == "canceled" {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("smoke: job stuck in state %s", doc.State)
		}
		time.Sleep(25 * time.Millisecond)
	}
	if doc.State != "done" {
		return fmt.Errorf("smoke: job %s: %s", doc.State, doc.Error)
	}
	if doc.Result == nil || doc.Result.HPWL <= 0 || doc.Result.DatapathDSPs == 0 {
		return fmt.Errorf("smoke: implausible result %+v", doc.Result)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		return fmt.Errorf("smoke: metrics: %w", err)
	}
	metricsText, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	for _, want := range []string{
		`dsplacer_jobs_completed_total{outcome="done"} 1`,
		"dsplacer_jobs_submitted_total 1",
	} {
		if !strings.Contains(string(metricsText), want) {
			return fmt.Errorf("smoke: /metrics missing %q", want)
		}
	}
	fmt.Printf("smoke: placed %s via %s: WNS %+.3f ns, HPWL %.0f, %d datapath DSPs (DRC-clean)\n",
		nl.Name, base, doc.Result.WNS, doc.Result.HPWL, doc.Result.DatapathDSPs)
	return nil
}
