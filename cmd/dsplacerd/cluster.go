// Two-daemon shared-cache smoke (-smoke-cluster): re-exec this binary as
// two real dsplacerd processes whose caches are crossed via -cache-listen /
// -cache-peers, place a netlist on daemon A, and assert daemon B serves the
// identical request from the shared cache without running a placement —
// the end-to-end proof of the DESIGN.md §14 scale-out story.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"

	"dsplacer/internal/fpga"
	"dsplacer/internal/gen"
	"dsplacer/internal/server"
)

// freePort reserves an ephemeral loopback port and returns "127.0.0.1:N".
// The port is released before use — a benign race for a self-test.
func freePort() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}

// daemon is one child dsplacerd process in the smoke cluster.
type daemon struct {
	name string
	base string // http://127.0.0.1:N
	cmd  *exec.Cmd
}

func startDaemon(exe, name, httpAddr, cacheAddr, peerAddr string) (*daemon, error) {
	cmd := exec.Command(exe,
		"-addr", httpAddr,
		"-cache-listen", cacheAddr,
		"-cache-peers", peerAddr,
		"-workers", "2",
		"-drain-grace", "30s",
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("cluster: start %s: %w", name, err)
	}
	return &daemon{name: name, base: "http://" + httpAddr, cmd: cmd}, nil
}

func (d *daemon) waitHealthy(deadline time.Time) error {
	for {
		resp, err := http.Get(d.base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: %s never became healthy: %v", d.name, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func (d *daemon) stop() {
	if d == nil || d.cmd == nil || d.cmd.Process == nil {
		return
	}
	d.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan struct{})
	go func() { d.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(45 * time.Second):
		d.cmd.Process.Kill()
		<-done
	}
}

// placeOn submits body to the daemon and polls the job to completion.
func (d *daemon) placeOn(body []byte) (server.JobDoc, error) {
	var doc server.JobDoc
	resp, err := http.Post(d.base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return doc, fmt.Errorf("cluster: submit to %s: %w", d.name, err)
	}
	var sub struct{ ID, State, Error string }
	err = json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if err != nil {
		return doc, err
	}
	if resp.StatusCode != http.StatusAccepted || sub.ID == "" {
		return doc, fmt.Errorf("cluster: submit to %s: status %d (%s)", d.name, resp.StatusCode, sub.Error)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		resp, err := http.Get(d.base + "/v1/jobs/" + sub.ID)
		if err != nil {
			return doc, err
		}
		err = json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		if err != nil {
			return doc, err
		}
		switch doc.State {
		case "done":
			if doc.Result == nil {
				return doc, fmt.Errorf("cluster: %s: done without result", d.name)
			}
			return doc, nil
		case "failed", "canceled":
			return doc, fmt.Errorf("cluster: %s: job %s: %s", d.name, doc.State, doc.Error)
		}
		if time.Now().After(deadline) {
			return doc, fmt.Errorf("cluster: %s: job stuck in %s", d.name, doc.State)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func (d *daemon) metrics() (string, error) {
	resp, err := http.Get(d.base + "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	text, err := io.ReadAll(resp.Body)
	return string(text), err
}

func runClusterSmoke() error {
	exe, err := os.Executable()
	if err != nil {
		return fmt.Errorf("cluster: locate own binary: %w", err)
	}
	httpA, err := freePort()
	if err != nil {
		return err
	}
	httpB, err := freePort()
	if err != nil {
		return err
	}
	cacheA, err := freePort()
	if err != nil {
		return err
	}
	cacheB, err := freePort()
	if err != nil {
		return err
	}

	a, err := startDaemon(exe, "daemon-a", httpA, cacheA, cacheB)
	if err != nil {
		return err
	}
	defer a.stop()
	b, err := startDaemon(exe, "daemon-b", httpB, cacheB, cacheA)
	if err != nil {
		return err
	}
	defer b.stop()
	deadline := time.Now().Add(30 * time.Second)
	if err := a.waitHealthy(deadline); err != nil {
		return err
	}
	if err := b.waitHealthy(deadline); err != nil {
		return err
	}

	// One request body, byte-identical on both daemons: the cache key is
	// content-addressed, so this is the same cache entry cluster-wide.
	nl, err := gen.Generate(gen.Small(), fpga.NewZCU104())
	if err != nil {
		return err
	}
	nlJSON, err := json.Marshal(nl)
	if err != nil {
		return err
	}
	body, err := json.Marshal(map[string]any{
		"netlist":  json.RawMessage(nlJSON),
		"validate": "final",
		"seed":     1,
		"tenant":   "smoke",
	})
	if err != nil {
		return err
	}

	docA, err := a.placeOn(body)
	if err != nil {
		return err
	}
	if docA.Result.Cached {
		return fmt.Errorf("cluster: first placement on daemon-a reported cached")
	}
	docB, err := b.placeOn(body)
	if err != nil {
		return err
	}
	if !docB.Result.Cached {
		return fmt.Errorf("cluster: daemon-b recomputed a placement daemon-a already cached")
	}
	if docB.Result.HPWL != docA.Result.HPWL || docB.Result.WNS != docA.Result.WNS {
		return fmt.Errorf("cluster: shared result differs: A HPWL %g WNS %g, B HPWL %g WNS %g",
			docA.Result.HPWL, docA.Result.WNS, docB.Result.HPWL, docB.Result.WNS)
	}

	// B must have served the hit locally (A's write-through landed) and run
	// zero placements of its own; A must have pushed the value to its peer.
	mB, err := b.metrics()
	if err != nil {
		return err
	}
	if !strings.Contains(mB, "dsplacer_placements_total 0") {
		return fmt.Errorf("cluster: daemon-b ran a placement despite the shared cache")
	}
	if !strings.Contains(mB, "dsplacer_cache_hits_total 1") {
		return fmt.Errorf("cluster: daemon-b metrics missing the cross-process cache hit")
	}
	mA, err := a.metrics()
	if err != nil {
		return err
	}
	if !strings.Contains(mA, "dsplacer_cache_peer_puts_total 1") {
		return fmt.Errorf("cluster: daemon-a metrics missing the peer write-through")
	}

	fmt.Printf("cluster smoke: daemon-a placed %s (HPWL %.0f), daemon-b served it from the shared cache\n",
		nl.Name, docA.Result.HPWL)
	return nil
}
