// Command dsplacer places a netlist end to end with the DSPlacer flow (or
// a baseline flow) on a registered device (ZCU104 by default) and prints
// the post-route timing/wirelength report, optionally dumping the layout.
//
// Usage:
//
//	dsplacer -netlist design.json -freq 150 [-flow dsplacer|vivado|amf]
//	         [-device zcu104|pynq-z2|zu15eg|arria10]
//	         [-lambda 100] [-mcf-iters 50] [-rounds 2] [-seed 1]
//	         [-svg layout.svg] [-ascii]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"dsplacer/internal/cli"
	"dsplacer/internal/core"
	"dsplacer/internal/costmodel"
	"dsplacer/internal/dspgraph"
	"dsplacer/internal/features"
	"dsplacer/internal/fpga"
	"dsplacer/internal/gcn"
	"dsplacer/internal/gsp"
	"dsplacer/internal/netlist"
	"dsplacer/internal/placer"
	"dsplacer/internal/route"
	"dsplacer/internal/viz"
	"dsplacer/internal/xdc"
)

func main() {
	path := flag.String("netlist", "", "JSON netlist to place (required)")
	device := flag.String("device", "zcu104", "target device from the registry: "+strings.Join(fpga.Names(), ", "))
	freq := flag.Float64("freq", 150, "target clock frequency in MHz")
	flow := flag.String("flow", "dsplacer", "flow: dsplacer, vivado or amf")
	lambda := flag.Float64("lambda", 100, "datapath penalty λ (Eq. 6/7)")
	mcfIters := flag.Int("mcf-iters", 50, "MCF linearization iterations")
	rounds := flag.Int("rounds", 2, "incremental placement rounds (Fig. 6)")
	modelPath := flag.String("model", "", "trained GCN model (cmd/train) for datapath identification; default: generator ground truth")
	costModelPath := flag.String("cost-model", "", "trained placement-cost model (cmd/train -cost) arming MCF early stop and candidate pruning; default: off")
	distilledPath := flag.String("distilled", "", "distilled spectral student (cmd/train -distill) for O(edges) datapath identification")
	featMode := flag.String("features", "auto", "centrality backend for identification features: auto, exact, sampled or gsp")
	svgPath := flag.String("svg", "", "write an SVG layout to this path")
	ascii := flag.Bool("ascii", false, "print an ASCII layout")
	congestion := flag.Bool("congestion", false, "print a routing congestion heatmap")
	xdcPath := flag.String("xdc", "", "write Vivado LOC constraints for the DSP placement to this path")
	jsonOut := flag.Bool("json", false, "print the report as JSON instead of text")
	common := cli.RegisterCommon(flag.CommandLine, 1, "final")
	flag.Parse()
	stop := common.Start()
	defer stop()

	if *path == "" {
		flag.Usage()
		os.Exit(2)
	}
	// Ctrl-C / SIGTERM cancels the flow at the next stage boundary (or
	// assignment iteration) instead of killing the process mid-write.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	nl, err := netlist.LoadFile(*path)
	if err != nil {
		cli.Fatal(err)
	}
	dev, err := fpga.Lookup(*device)
	if err != nil {
		cli.Fatal(err)
	}
	cfg := core.Config{
		ClockMHz: *freq, Lambda: *lambda,
		MCFIterations: *mcfIters, Rounds: *rounds, Seed: common.Seed,
		Validate: common.Validate(),
	}
	mode, err := features.ParseMode(*featMode)
	if err != nil {
		cli.Fatal(err)
	}
	fcfg := features.Config{Mode: mode, Seed: common.Seed + 13}
	switch {
	case *modelPath != "" && *distilledPath != "":
		cli.Fatal(fmt.Errorf("-model and -distilled are mutually exclusive"))
	case *modelPath != "":
		model, err := gcn.LoadFile(*modelPath)
		if err != nil {
			cli.Fatal(err)
		}
		cfg.Identifier = &core.GCNIdentifier{Model: model, FeatureCfg: fcfg}
	case *distilledPath != "":
		student, err := gsp.LoadDistilled(*distilledPath)
		if err != nil {
			cli.Fatal(err)
		}
		cfg.Identifier = &core.DistilledIdentifier{Model: student, FeatureCfg: fcfg}
	}
	if *costModelPath != "" {
		cm, err := costmodel.LoadFile(*costModelPath)
		if err != nil {
			cli.Fatal(err)
		}
		cfg.CostModel = cm
	}

	var res *core.Result
	switch *flow {
	case "dsplacer":
		res, err = core.Run(ctx, dev, nl, cfg)
	case "vivado":
		res, err = core.RunBaseline(ctx, dev, nl, placer.ModeVivado, cfg)
	case "amf":
		res, err = core.RunBaseline(ctx, dev, nl, placer.ModeAMF, cfg)
	default:
		cli.Fatal(fmt.Errorf("unknown -flow %q", *flow))
	}
	if err != nil {
		stop()
		cli.Fatal(err)
	}

	if *jsonOut {
		p := res.Profile
		report := map[string]interface{}{
			"design": nl.Name, "flow": res.Flow, "freq_mhz": *freq,
			"wns_ns": res.WNS, "tns_ns": res.TNS,
			"hpwl": res.HPWL, "routed_wl": res.RoutedWL, "overflow_edges": res.Overflow,
			"runtime_s": p.Total.Seconds(),
			"profile_s": map[string]float64{
				"prototype": p.Prototype.Seconds(), "extraction": p.Extraction.Seconds(),
				"dsp_place": p.DSPPlace.Seconds(), "other_place": p.OtherPlace.Seconds(),
				"routing": p.Routing.Seconds(),
			},
			"datapath_dsps": len(res.DatapathDSPs),
		}
		if res.AssignStopReason != "" {
			report["assign_iterations"] = res.AssignIterations
			report["assign_stop_reason"] = res.AssignStopReason
			report["assign_pruned_arcs"] = res.AssignPrunedArcs
			if cfg.CostModel != nil {
				report["cost_model"] = cfg.CostModel.Fingerprint()
				report["assign_pred_hpwl"] = res.AssignPredHPWL
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			cli.Fatal(err)
		}
		return
	}
	st := nl.Stats()
	fmt.Printf("design   %s (%d cells, %d nets, %d DSP)\n", nl.Name, nl.NumCells(), st.Nets, st.DSP)
	fmt.Printf("flow     %s @ %.1f MHz\n", res.Flow, *freq)
	fmt.Printf("WNS      %+.3f ns\n", res.WNS)
	fmt.Printf("TNS      %+.3f ns\n", res.TNS)
	fmt.Printf("HPWL     %.0f\n", res.HPWL)
	fmt.Printf("routedWL %.0f (overflowed edges: %d)\n", res.RoutedWL, res.Overflow)
	p := res.Profile
	fmt.Printf("runtime  %.2fs (proto %.2fs, extract %.2fs, dsp %.2fs, other %.2fs, route %.2fs)\n",
		p.Total.Seconds(), p.Prototype.Seconds(), p.Extraction.Seconds(),
		p.DSPPlace.Seconds(), p.OtherPlace.Seconds(), p.Routing.Seconds())
	if res.AssignStopReason != "" {
		fmt.Printf("assign   %d iterations, stop: %s", res.AssignIterations, res.AssignStopReason)
		if cfg.CostModel != nil {
			fmt.Printf(" (cost model %s, %d arcs pruned)", cfg.CostModel.Fingerprint(), res.AssignPrunedArcs)
		}
		fmt.Println()
	}

	if *xdcPath != "" {
		if err := xdc.SaveFile(*xdcPath, dev, nl, res.SiteOfDSP); err != nil {
			cli.Fatal(err)
		}
		fmt.Printf("constraints %s (%d DSPs)\n", *xdcPath, len(res.SiteOfDSP))
	}
	if *congestion {
		rr := route.Route(dev, nl, res.Pos, route.Options{})
		fmt.Println(viz.Heatmap(viz.CongestionMap{
			NX: rr.GridNX, NY: rr.GridNY, H: rr.HUtil, V: rr.VUtil,
		}, 72, 30))
	}
	if *ascii || *svgPath != "" {
		datapath := map[int]bool{}
		ids, _ := core.OracleIdentifier{}.Identify(ctx, nl)
		for _, c := range ids {
			datapath[c] = true
		}
		if *ascii {
			fmt.Println(viz.ASCII(dev, nl, res.Pos, datapath, 72, 30))
		}
		if *svgPath != "" {
			dg := dspgraph.Build(nl, dspgraph.Config{})
			var edges [][2]int
			for _, e := range dg.Edges {
				if datapath[e.From] && datapath[e.To] {
					edges = append(edges, [2]int{e.From, e.To})
				}
			}
			if err := os.WriteFile(*svgPath, []byte(viz.SVG(dev, nl, res.Pos, datapath, edges)), 0o644); err != nil {
				cli.Fatal(err)
			}
			fmt.Printf("layout   %s\n", *svgPath)
		}
	}
}
