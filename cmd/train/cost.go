package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dsplacer/internal/core"
	"dsplacer/internal/costmodel"
	"dsplacer/internal/experiments"
	"dsplacer/internal/fpga"
	"dsplacer/internal/gen"
)

// runCostTrain generates the assignment-trace corpus over the device ×
// family registry and fits the placement-cost model. An empty devices
// string selects every registered part.
func runCostTrain(out, devices string, iters, rounds int, ridge float64, seed int64) error {
	var devNames []string
	if devices != "" {
		devNames = strings.Split(devices, ",")
	}
	tcfg := experiments.TableIIConfig{MCFIterations: iters, Rounds: rounds, Seed: seed}
	corpus, err := experiments.CostCorpus(context.Background(), devNames, nil, tcfg)
	if err != nil {
		return err
	}
	m, err := costmodel.Train(corpus, costmodel.TrainConfig{Ridge: ridge, Seed: seed})
	if err != nil {
		return err
	}
	maeWNS, maeTNS, relHPWL, n := costmodel.Evaluate(m, corpus)
	fmt.Printf("cost model %s: %d examples, train MAE wns %.3fns tns %.3fns hpwl %.1f%%, prune_keep %.2f\n",
		m.Fingerprint(), n, maeWNS, maeTNS, relHPWL*100, m.PruneKeep)
	if err := m.SaveFile(out); err != nil {
		return err
	}
	fmt.Printf("cost model saved to %s\n", out)
	return nil
}

// runCostSmoke is the `make train-smoke` gate: train the cost model twice
// on a tiny fixed corpus, require byte-identical artifacts, then run one
// placement with the model armed. It exercises the corpus generator, the
// deterministic trainer, the artifact round-trip and both inference hooks
// in well under a minute.
func runCostSmoke(seed int64) error {
	tcfg := experiments.TableIIConfig{MCFIterations: 6, Rounds: 1, Seed: seed}
	devices := []string{"pynq-z2"}
	train := func() (*costmodel.Model, []byte, error) {
		corpus, err := experiments.CostCorpus(context.Background(), devices, nil, tcfg)
		if err != nil {
			return nil, nil, err
		}
		m, err := costmodel.Train(corpus, costmodel.TrainConfig{Seed: seed})
		if err != nil {
			return nil, nil, err
		}
		b, err := m.Save()
		return m, b, err
	}
	m1, b1, err := train()
	if err != nil {
		return err
	}
	_, b2, err := train()
	if err != nil {
		return err
	}
	if !bytes.Equal(b1, b2) {
		return fmt.Errorf("cost smoke: training twice produced different artifacts (%d vs %d bytes)", len(b1), len(b2))
	}

	// Round-trip through disk like a deployment would, then place with the
	// loaded model armed.
	dir, err := os.MkdirTemp("", "cost-smoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "cost.json")
	if err := m1.SaveFile(path); err != nil {
		return err
	}
	m, err := costmodel.LoadFile(path)
	if err != nil {
		return err
	}
	dev, err := fpga.Lookup("pynq-z2")
	if err != nil {
		return err
	}
	spec := gen.CNNMini()
	nl, err := gen.Generate(spec, dev)
	if err != nil {
		return err
	}
	res, err := core.Run(context.Background(), dev, nl, core.Config{
		ClockMHz: spec.FreqMHz, MCFIterations: 6, Rounds: 1, Seed: seed,
		CostModel: m,
	})
	if err != nil {
		return err
	}
	fmt.Printf("cost smoke ok: artifact %s (%d bytes), placement %d iters, stop %s, %d arcs pruned\n",
		m.Fingerprint(), len(b1), res.AssignIterations, res.AssignStopReason, res.AssignPrunedArcs)
	return nil
}
