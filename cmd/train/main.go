// Command train fits the §III-A GCN datapath classifier on benchmark
// netlists and saves the model for cmd/dsplacer-style flows (the paper's
// "well-trained GCN" artifact).
//
// Usage:
//
//	train -out model.json design1.json design2.json ...
//	train -mini -out model.json           # train on built-in mini suite
//	train -mini -features gsp -distill student.json   # + spectral student
//	train -eval design.json -model model.json
//	train -cost -out cost.json            # placement-cost model (device × family corpus)
//	train -cost-smoke                     # deterministic-artifact CI gate
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"dsplacer/internal/cli"
	"dsplacer/internal/core"
	"dsplacer/internal/experiments"
	"dsplacer/internal/features"
	"dsplacer/internal/gcn"
	"dsplacer/internal/gsp"
	"dsplacer/internal/netlist"
)

func main() {
	out := flag.String("out", "model.json", "path for the trained model")
	mini := flag.Bool("mini", false, "train on the built-in mini benchmark suite")
	epochs := flag.Int("epochs", 120, "training epochs")
	pivots := flag.Int("pivots", 96, "centrality sampling pivots")
	featMode := flag.String("features", "auto", "centrality backend: auto, exact, sampled or gsp")
	distillOut := flag.String("distill", "", "also distill an O(edges) spectral student to this path")
	evalPath := flag.String("eval", "", "evaluate -model on this netlist instead of training")
	modelPath := flag.String("model", "", "model to evaluate (with -eval)")
	cost := flag.Bool("cost", false, "train the placement-cost model instead of the GCN (writes to -out)")
	costDevices := flag.String("cost-devices", "", "comma-separated device names for the cost corpus (default: every registered part)")
	costIters := flag.Int("cost-iters", 12, "MCF iterations per cost-corpus run")
	costRounds := flag.Int("cost-rounds", 1, "incremental rounds per cost-corpus run")
	costRidge := flag.Float64("cost-ridge", 1e-2, "L2 penalty of the cost-model fit")
	costSmoke := flag.Bool("cost-smoke", false, "CI gate: train the cost model twice on a tiny corpus, require byte-identical artifacts, run one placement with it")
	common := cli.RegisterCommon(flag.CommandLine, 1, "off")
	flag.Parse()
	stop := common.Start()
	defer stop()

	if *costSmoke {
		if err := runCostSmoke(common.Seed); err != nil {
			cli.Fatal(err)
		}
		return
	}
	if *cost {
		if err := runCostTrain(*out, *costDevices, *costIters, *costRounds, *costRidge, common.Seed); err != nil {
			cli.Fatal(err)
		}
		return
	}

	mode, err := features.ParseMode(*featMode)
	if err != nil {
		cli.Fatal(err)
	}
	fcfg := features.Config{Mode: mode, Pivots: *pivots, Seed: common.Seed + 13}

	if *evalPath != "" {
		if *modelPath == "" {
			cli.Fatal(errors.New("-eval requires -model"))
		}
		model, err := gcn.LoadFile(*modelPath)
		if err != nil {
			cli.Fatal(err)
		}
		nl, err := netlist.LoadFile(*evalPath)
		if err != nil {
			cli.Fatal(err)
		}
		sample, err := core.BuildSample(nl, fcfg)
		if err != nil {
			cli.Fatal(err)
		}
		fmt.Printf("%s: datapath DSP accuracy %.1f%% over %d DSPs\n",
			nl.Name, model.Accuracy(sample)*100, len(sample.Mask))
		return
	}

	var samples []*gcn.Sample
	if *mini {
		suite := experiments.NewSuite(experiments.MiniSpecs())
		for _, spec := range suite.Specs {
			nl, err := suite.Netlist(spec)
			if err != nil {
				cli.Fatal(err)
			}
			s, err := core.BuildSample(nl, fcfg)
			if err != nil {
				cli.Fatal(err)
			}
			samples = append(samples, s)
		}
	}
	for _, path := range flag.Args() {
		nl, err := netlist.LoadFile(path)
		if err != nil {
			cli.Fatal(err)
		}
		s, err := core.BuildSample(nl, fcfg)
		if err != nil {
			cli.Fatal(err)
		}
		samples = append(samples, s)
	}
	if len(samples) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	cfg := gcn.Defaults(features.NumFeatures)
	cfg.Epochs = *epochs
	cfg.Seed = common.Seed
	model, hist := gcn.Train(cfg, samples, nil)
	if len(hist) > 0 {
		last := hist[len(hist)-1]
		fmt.Printf("trained %d epochs on %d graphs: train accuracy %.1f%%, loss %.4f\n",
			last.Epoch, len(samples), last.TrainAcc*100, last.Loss)
	}
	if err := model.SaveFile(*out); err != nil {
		cli.Fatal(err)
	}
	fmt.Printf("model saved to %s\n", *out)

	if *distillOut != "" {
		student, err := gsp.Distill(model, samples, gsp.DistillOptions{})
		if err != nil {
			cli.Fatal(err)
		}
		agree := 0.0
		for _, s := range samples {
			agree += student.Agreement(model, s)
		}
		if err := student.SaveFile(*distillOut); err != nil {
			cli.Fatal(err)
		}
		fmt.Printf("distilled student saved to %s (teacher agreement %.1f%%)\n",
			*distillOut, agree/float64(len(samples))*100)
	}
}
