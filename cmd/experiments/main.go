// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -table1            # Table I   benchmark statistics
//	experiments -table2            # Table II  Vivado vs AMF vs DSPlacer
//	experiments -fig7a -fig7b      # Fig 7     GCN vs SVM classification
//	experiments -fig8              # Fig 8     runtime breakdown
//	experiments -fig9 -out DIR     # Fig 9     layout visualizations (+SVG)
//	experiments -ablations         # λ / MCF-iteration / filtering sweeps
//	experiments -agreement -mini   # exact-vs-GSP feature backend agreement
//	experiments -matrix            # device × family QoR matrix
//	experiments -cost-compare cost.json   # Table II model-off vs model-on
//	experiments -matrix -devices pynq-z2,zcu104   # subset of the device axis
//	experiments -all               # everything above
//	experiments -mini              # use ~1/16-scale benchmarks (fast)
//
// Profiling / observability (see DESIGN.md §8):
//
//	experiments -cpuprofile cpu.pb.gz -table2   # pprof CPU profile
//	experiments -memprofile mem.pb.gz -table2   # pprof heap profile on exit
//	experiments -stages -table2                 # hot-path stage timing table
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dsplacer/internal/cli"
	"dsplacer/internal/costmodel"
	"dsplacer/internal/experiments"
	"dsplacer/internal/features"
	"dsplacer/internal/gen"
	"dsplacer/internal/placer"
)

func main() {
	table1 := flag.Bool("table1", false, "regenerate Table I")
	table2 := flag.Bool("table2", false, "regenerate Table II")
	fig7a := flag.Bool("fig7a", false, "regenerate Fig 7(a)")
	fig7b := flag.Bool("fig7b", false, "regenerate Fig 7(b)")
	fig8 := flag.Bool("fig8", false, "regenerate Fig 8")
	fig9 := flag.Bool("fig9", false, "regenerate Fig 9")
	ablations := flag.Bool("ablations", false, "run the design-choice ablations")
	agreement := flag.Bool("agreement", false, "run the exact-vs-GSP feature-backend agreement study")
	extension := flag.Bool("extension", false, "run the R-SAD systolic-vs-diverse extension study")
	matrix := flag.Bool("matrix", false, "run the device × family QoR matrix")
	costCompare := flag.String("cost-compare", "", "run the Table II suite model-off vs model-on with this placement-cost model (cmd/train -cost)")
	devices := flag.String("devices", "", "comma-separated device names for -matrix (default: every registered device)")
	all := flag.Bool("all", false, "run everything")
	mini := flag.Bool("mini", false, "use ~1/16-scale mini benchmarks")
	out := flag.String("out", ".", "output directory for SVG figures")
	epochs := flag.Int("epochs", 40, "GCN training epochs for Fig 7 (paper: 300)")
	mcfIters := flag.Int("mcf-iters", 50, "MCF iterations (paper: 50)")
	rounds := flag.Int("rounds", 2, "incremental rounds")
	gpEngine := flag.String("gp", "electrostatic", "global-placement engine: electrostatic or quadratic")
	featMode := flag.String("features", "auto", "centrality backend for Fig 7 feature extraction: auto, exact, sampled or gsp")
	common := cli.RegisterCommon(flag.CommandLine, 1, "off")
	flag.Parse()
	stop := common.Start()
	defer stop()

	if *all {
		*table1, *table2, *fig7a, *fig7b, *fig8, *fig9, *ablations, *extension, *agreement, *matrix = true, true, true, true, true, true, true, true, true, true
	}
	if !(*table1 || *table2 || *fig7a || *fig7b || *fig8 || *fig9 || *ablations || *extension || *agreement || *matrix || *costCompare != "") {
		flag.Usage()
		os.Exit(2)
	}

	var gp placer.GPMode
	switch *gpEngine {
	case "electrostatic", "electro":
		gp = placer.ModeElectrostatic
	case "quadratic", "quad":
		gp = placer.ModeQuadratic
	default:
		cli.Fatal(fmt.Errorf("unknown -gp engine %q (want electrostatic or quadratic)", *gpEngine))
	}

	specs := gen.TableI()
	if *mini {
		specs = experiments.MiniSpecs()
	}
	suite := experiments.NewSuite(specs)
	cfg := experiments.TableIIConfig{
		MCFIterations: *mcfIters, Rounds: *rounds, Lambda: 100, Seed: common.Seed,
		Validate: common.Validate(), GP: gp,
	}
	fmode, err := features.ParseMode(*featMode)
	if err != nil {
		cli.Fatal(err)
	}
	f7 := experiments.Fig7Config{Epochs: *epochs, Seed: common.Seed, FeatureMode: fmode}
	w := os.Stdout

	if *table1 {
		section(w, "Table I")
		check(suite.TableI(w))
	}
	if *fig7a {
		section(w, "Fig 7(a)")
		_, err := suite.Fig7a(w, f7)
		check(err)
	}
	if *fig7b {
		section(w, "Fig 7(b)")
		_, err := suite.Fig7b(w, f7)
		check(err)
	}
	if *table2 {
		section(w, "Table II")
		_, err := suite.TableII(w, cfg)
		check(err)
	}
	if *fig8 {
		section(w, "Fig 8")
		check(suite.Fig8(w, cfg))
	}
	if *fig9 {
		section(w, "Fig 9")
		check(os.MkdirAll(*out, 0o755))
		check(suite.Fig9(w, *out, cfg))
	}
	if *extension {
		section(w, "Extension: R-SAD")
		check(suite.ExtensionRSAD(w, specs[1], cfg))
	}
	if *agreement {
		section(w, "Feature agreement")
		_, err := suite.FeatureAgreement(w, f7)
		check(err)
	}
	if *matrix {
		section(w, "QoR matrix")
		var devNames []string
		if *devices != "" {
			devNames = strings.Split(*devices, ",")
		}
		_, err := experiments.QoRMatrix(w, devNames, gen.FamilySpecs(), cfg)
		check(err)
	}
	if *costCompare != "" {
		section(w, "Cost model off vs on")
		m, err := costmodel.LoadFile(*costCompare)
		check(err)
		_, err = suite.CostModelCompare(w, m, cfg)
		check(err)
	}
	if *ablations {
		section(w, "Ablations")
		spec := specs[1] // SkyNet(-like)
		check(suite.AblationLambda(w, spec, []float64{0, 10, 100, 1000}, cfg))
		check(suite.AblationMCFIterations(w, spec, []int{1, 5, 20, 50}, cfg))
		check(suite.AblationIdentifier(w, spec, cfg))
		check(suite.AblationLegalization(w, spec, cfg))
		if *mini {
			// The GCN-in-the-loop arm trains a model per run; it is kept to
			// the mini suite where that costs seconds, not tens of minutes.
			check(suite.AblationGCN(w, spec, cfg, f7))
		}
	}
}

func section(w *os.File, name string) {
	fmt.Fprintf(w, "\n================ %s ================\n", name)
}

func check(err error) {
	if err != nil {
		cli.Fatal(err)
	}
}
