// Package dsplacer is a pure-Go reproduction of "DSPlacer: DSP Placement
// for FPGA-based CNN Accelerator" (DAC 2025): a datapath-driven DSP
// placement framework for FPGA CNN accelerators, together with every
// substrate it needs — a column-heterogeneous UltraScale+ device model, an
// analytical global placer, a congestion-aware router, a static timing
// analyzer, a GCN datapath classifier, a min-cost-flow assignment engine
// and ILP cascade legalization.
//
// The quickest path through the API:
//
//	dev := dsplacer.NewZCU104()
//	nl, _ := dsplacer.Generate(dsplacer.SmallSpec(), dev)
//	res, _ := dsplacer.Run(dev, nl, dsplacer.Config{ClockMHz: 200})
//	fmt.Printf("WNS %.3f ns, HPWL %.0f\n", res.WNS, res.HPWL)
//
// Run executes the full DSPlacer flow of the paper (prototype placement →
// datapath DSP extraction → iterative MCF placement + ILP legalization →
// incremental re-placement → routing → timing). RunBaseline provides the
// Vivado-like and AMF-like comparison flows of Table II.
//
// Beyond the ZCU104 evaluation part, LookupDevice resolves any fabric in
// the named registry (DeviceNames lists them), and beyond the paper's CNN
// benchmarks the generator offers further topology families (Spec.Family,
// FamilySpecs). Golden QoR envelopes for every (device, family) cell live
// under testdata/golden/qor.
package dsplacer

import (
	"context"

	"dsplacer/internal/core"
	"dsplacer/internal/fpga"
	"dsplacer/internal/gen"
	"dsplacer/internal/netlist"
	"dsplacer/internal/placer"
)

// Re-exported core types: see package core for the full documentation.
type (
	// Config tunes a DSPlacer run (λ, η, MCF iterations, rounds, clock).
	Config = core.Config
	// Result reports WNS/TNS/HPWL/routed wirelength and the Fig. 8 profile.
	Result = core.Result
	// Profile decomposes runtime by flow stage.
	Profile = core.Profile
	// Identifier selects datapath DSPs (GCN or oracle).
	Identifier = core.Identifier
	// OracleIdentifier uses generator ground-truth labels.
	OracleIdentifier = core.OracleIdentifier
	// GCNIdentifier classifies DSPs with a trained GCN model.
	GCNIdentifier = core.GCNIdentifier
	// ValidateLevel selects stage-boundary DRC gating (Config.Validate).
	ValidateLevel = core.ValidateLevel
	// ValidationError is the stage-tagged DRC failure; recover it with
	// errors.As, or match the class with errors.Is(err, ErrDRC).
	ValidationError = core.ValidationError

	// Device models a column-heterogeneous FPGA fabric.
	Device = fpga.Device
	// DeviceConfig parameterizes NewDevice.
	DeviceConfig = fpga.Config
	// Netlist is a pre-implementation design.
	Netlist = netlist.Netlist
	// Spec describes a benchmark for the generator.
	Spec = gen.Spec
	// Family selects a generator topology family (Spec.Family).
	Family = gen.Family
	// Mode selects a baseline placer personality.
	Mode = placer.Mode
)

// Generator topology families for Spec.Family.
const (
	FamilyCNN            = gen.FamilyCNN
	FamilySparseSystolic = gen.FamilySparseSystolic
	FamilyMemMapped      = gen.FamilyMemMapped
	FamilyMultiAccel     = gen.FamilyMultiAccel
)

// Baseline placer modes for RunBaseline.
const (
	ModeVivado = placer.ModeVivado
	ModeAMF    = placer.ModeAMF
)

// Stage-boundary DRC gating levels for Config.Validate.
const (
	ValidateOff        = core.ValidateOff
	ValidateFinal      = core.ValidateFinal
	ValidateEveryStage = core.ValidateEveryStage
)

// ErrDRC is the sentinel every stage-boundary DRC failure wraps.
var ErrDRC = core.ErrDRC

// ErrCanceled is the sentinel every cancellation-driven early return wraps
// (context canceled or deadline exceeded); match it with errors.Is.
var ErrCanceled = core.ErrCanceled

// Run executes the complete DSPlacer flow on nl. See core.Run.
func Run(dev *Device, nl *Netlist, cfg Config) (*Result, error) {
	return core.Run(context.Background(), dev, nl, cfg)
}

// RunContext is Run under a context: the flow stops at the next stage
// boundary (or assignment iteration) once ctx is done, returning an error
// matching ErrCanceled.
func RunContext(ctx context.Context, dev *Device, nl *Netlist, cfg Config) (*Result, error) {
	return core.Run(ctx, dev, nl, cfg)
}

// RunBaseline executes a Vivado-like or AMF-like comparison flow.
func RunBaseline(dev *Device, nl *Netlist, mode Mode, cfg Config) (*Result, error) {
	return core.RunBaseline(context.Background(), dev, nl, mode, cfg)
}

// RunBaselineContext is RunBaseline under a context; see RunContext.
func RunBaselineContext(ctx context.Context, dev *Device, nl *Netlist, mode Mode, cfg Config) (*Result, error) {
	return core.RunBaseline(ctx, dev, nl, mode, cfg)
}

// NewZCU104 builds the ZCU104-like evaluation device (1728 DSP sites).
func NewZCU104() *Device { return fpga.NewZCU104() }

// NewDevice builds a custom device from a column pattern.
func NewDevice(cfg DeviceConfig) (*Device, error) { return fpga.NewDevice(cfg) }

// LookupDevice resolves a named device from the registry ("zcu104",
// "pynq-z2", "zu15eg", "arria10", ...); the error on an unknown name lists
// every registered part.
func LookupDevice(name string) (*Device, error) { return fpga.Lookup(name) }

// DeviceNames lists every registered device name, sorted.
func DeviceNames() []string { return fpga.Names() }

// ParseFamily resolves a topology family by name ("cnn",
// "sparse-systolic", "memmapped", "multi-accel").
func ParseFamily(name string) (Family, error) { return gen.ParseFamily(name) }

// FamilySpecs returns one preset benchmark spec per topology family,
// sized to fit every registered device.
func FamilySpecs() []Spec { return gen.FamilySpecs() }

// Generate synthesizes a CNN-accelerator benchmark netlist.
func Generate(spec Spec, dev *Device) (*Netlist, error) { return gen.Generate(spec, dev) }

// TableISpecs returns the paper's five benchmark specifications.
func TableISpecs() []Spec { return gen.TableI() }

// SmallSpec returns a miniature benchmark for quick starts and tests.
func SmallSpec() Spec { return gen.Small() }

// LoadNetlist reads a JSON netlist from disk.
func LoadNetlist(path string) (*Netlist, error) { return netlist.LoadFile(path) }
