// Timing report: place a mini benchmark with DSPlacer, then produce a
// report_timing-style listing of the worst paths and a routing congestion
// heatmap — the post-route analysis views an FPGA engineer reads first.
//
//	go run ./examples/timing_report
package main

import (
	"context"
	"fmt"
	"log"

	"dsplacer"
	"dsplacer/internal/core"
	"dsplacer/internal/experiments"
	"dsplacer/internal/route"
	"dsplacer/internal/sta"
	"dsplacer/internal/viz"
)

func main() {
	dev := dsplacer.NewZCU104()
	spec := experiments.MiniSpecs()[0]
	nl, err := dsplacer.Generate(spec, dev)
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.Run(context.Background(), dev, nl, core.Config{
		ClockMHz: spec.FreqMHz, MCFIterations: 10, Rounds: 1, Seed: 4,
	})
	if err != nil {
		log.Fatal(err)
	}

	rr := route.Route(dev, nl, res.Pos, route.Options{})
	timing, err := sta.Analyze(nl, res.Pos, sta.Options{
		ClockPeriodNs: 1000 / spec.FreqMHz,
		Congestion:    rr.NetCongestion,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s @ %.0f MHz — WNS %+.3f ns, TNS %+.3f ns\n\n",
		spec.Name, spec.FreqMHz, timing.WNS, timing.TNS)
	fmt.Println("worst 5 paths (report_timing style):")
	for i, p := range timing.TopPaths(5) {
		fmt.Printf("  #%d slack %+.3f ns:", i+1, p.Slack)
		for k, c := range p.Cells {
			if k > 0 {
				fmt.Print(" →")
			}
			fmt.Printf(" %s(%v)", nl.Cells[c].Name, nl.Cells[c].Type)
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Print(viz.Heatmap(viz.CongestionMap{
		NX: rr.GridNX, NY: rr.GridNY, H: rr.HUtil, V: rr.VUtil,
	}, 60, 20))
	fmt.Printf("\nrouted wirelength %.0f, %d overflowed edges, max utilization %.2f\n",
		rr.Wirelength, rr.OverflowEdges, rr.MaxUtilization)
}
