// SkyNet flow: run the three Table-II flows (Vivado-like, AMF-like,
// DSPlacer) on the mini-SkyNet benchmark and render each DSP layout, the
// Fig. 9 comparison in miniature.
//
//	go run ./examples/skynet_flow
package main

import (
	"context"
	"fmt"
	"log"

	"dsplacer"
	"dsplacer/internal/core"
	"dsplacer/internal/experiments"
	"dsplacer/internal/placer"
	"dsplacer/internal/viz"
)

func main() {
	dev := dsplacer.NewZCU104()
	spec := experiments.MiniSpecs()[1] // mini-SkyNet
	nl, err := dsplacer.Generate(spec, dev)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benchmark %s @ %.0f MHz: %d cells, %d DSPs\n",
		spec.Name, spec.FreqMHz, nl.NumCells(), nl.Stats().DSP)

	cfg := dsplacer.Config{ClockMHz: spec.FreqMHz, MCFIterations: 10, Rounds: 1, Seed: 2}
	datapath := map[int]bool{}
	ids, _ := core.OracleIdentifier{}.Identify(context.Background(), nl)
	for _, c := range ids {
		datapath[c] = true
	}

	type flow struct {
		name string
		run  func() (*dsplacer.Result, error)
	}
	flows := []flow{
		{"vivado", func() (*dsplacer.Result, error) {
			return dsplacer.RunBaseline(dev, nl, placer.ModeVivado, cfg)
		}},
		{"amf", func() (*dsplacer.Result, error) {
			return dsplacer.RunBaseline(dev, nl, placer.ModeAMF, cfg)
		}},
		{"dsplacer", func() (*dsplacer.Result, error) {
			return dsplacer.Run(dev, nl, cfg)
		}},
	}
	fmt.Printf("\n%-10s %10s %12s %12s %10s\n", "flow", "WNS(ns)", "TNS(ns)", "HPWL", "time(s)")
	var layouts []string
	for _, f := range flows {
		res, err := f.run()
		if err != nil {
			log.Fatalf("%s: %v", f.name, err)
		}
		fmt.Printf("%-10s %+10.3f %+12.3f %12.0f %10.2f\n",
			f.name, res.WNS, res.TNS, res.HPWL, res.Profile.Total.Seconds())
		layouts = append(layouts,
			fmt.Sprintf("--- %s ---\n%s", f.name, viz.ASCII(dev, nl, res.Pos, datapath, 72, 24)))
	}
	fmt.Println()
	for _, l := range layouts {
		fmt.Println(l)
	}
}
