// Datapath extraction: train the GCN classifier of §III-A on mini
// benchmarks with the leave-one-out protocol, compare it against the
// PADE-style local-feature SVM, and show how the DSP graph refinement uses
// the predictions — a miniature Fig. 7.
//
//	go run ./examples/datapath_extraction
package main

import (
	"context"
	"fmt"
	"log"

	"dsplacer/internal/core"
	"dsplacer/internal/dspgraph"
	"dsplacer/internal/experiments"
	"dsplacer/internal/features"
	"dsplacer/internal/gcn"
)

func main() {
	suite := experiments.NewSuite(experiments.MiniSpecs()[:3])

	// Leave-one-out GCN vs SVM accuracy (Fig. 7a).
	rows, err := suite.Fig7a(logWriter{}, experiments.Fig7Config{Epochs: 30, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	_ = rows

	// Now use a trained model as the Identifier on a fresh design and build
	// the filtered datapath DSP graph the placement stage consumes.
	target := suite.Specs[0]
	nl, err := suite.Netlist(target)
	if err != nil {
		log.Fatal(err)
	}
	fcfg := features.Config{Pivots: 96, Seed: 9}
	var train []*gcn.Sample
	for _, spec := range suite.Specs[1:] {
		tnl, err := suite.Netlist(spec)
		if err != nil {
			log.Fatal(err)
		}
		s, err := core.BuildSample(tnl, fcfg)
		if err != nil {
			log.Fatal(err)
		}
		train = append(train, s)
	}
	gcfg := gcn.Defaults(features.NumFeatures)
	gcfg.Epochs = 30
	model, _ := gcn.Train(gcfg, train, nil)

	id := &core.GCNIdentifier{Model: model, FeatureCfg: fcfg}
	predicted, err := id.Identify(context.Background(), nl)
	if err != nil {
		log.Fatal(err)
	}
	correct := 0
	for _, c := range predicted {
		if nl.Cells[c].DatapathTruth {
			correct++
		}
	}
	truth := experiments.DatapathCount(nl)
	fmt.Printf("\n%s: GCN predicted %d datapath DSPs (%d correct, %d ground truth)\n",
		nl.Name, len(predicted), correct, truth)

	// Build + filter the DSP graph (§III-B) with the predictions.
	keep := map[int]bool{}
	for _, c := range predicted {
		keep[c] = true
	}
	full := dspgraph.Build(nl, dspgraph.Config{})
	filtered := full.Filter(func(id int) bool { return keep[id] })
	fmt.Printf("DSP graph: %d nodes / %d edges → filtered to %d nodes / %d edges\n",
		len(full.Nodes), len(full.Edges), len(filtered.Nodes), len(filtered.Edges))

	// The §III-B storage observation, measured: control DSPs see more
	// storage elements along their discovered paths.
	storage := full.StorageAlongPaths()
	var dataSum, ctrlSum, dataN, ctrlN float64
	for _, node := range full.Nodes {
		if nl.Cells[node].DatapathTruth {
			dataSum += float64(storage[node])
			dataN++
		} else {
			ctrlSum += float64(storage[node])
			ctrlN++
		}
	}
	fmt.Printf("storage elements along paths: datapath avg %.2f vs control avg %.2f\n",
		dataSum/dataN, ctrlSum/ctrlN)
}

// logWriter adapts fmt printing to the suite's io.Writer parameter.
type logWriter struct{}

func (logWriter) Write(p []byte) (int, error) {
	fmt.Print(string(p))
	return len(p), nil
}
