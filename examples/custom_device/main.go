// Custom device: define a non-ZCU104 fabric (different column pattern and
// clock-region count), synthesize a custom accelerator spec onto it, and
// place with DSPlacer — demonstrating that nothing in the pipeline is tied
// to the evaluation device.
//
//	go run ./examples/custom_device
package main

import (
	"fmt"
	"log"

	"dsplacer"
	"dsplacer/internal/fpga"
)

func main() {
	// A small edge-class device: 2 DSP columns per period, 3 clock-region
	// rows, and a PS block in the bottom-left corner.
	dev, err := dsplacer.NewDevice(dsplacer.DeviceConfig{
		Name:       "edge-soc",
		Pattern:    "CCDCB",
		Repeats:    6,
		RegionRows: 3,
		PSWidth:    5,
		PSHeight:   40,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device %q: %.0fx%.0f fabric, %d DSP sites in %d columns\n",
		dev.Name, dev.Width, dev.Height, dev.NumDSPSites(), len(dev.ColumnsOf(fpga.DSPRes)))

	// A depthwise-separable style accelerator: shorter cascades (3×1
	// kernels), more control DSPs.
	spec := dsplacer.Spec{
		Name: "edge-dwconv", LUT: 2400, LUTRAM: 120, FF: 2800, BRAM: 24, DSP: 96,
		FreqMHz: 250, CascadeLen: 3, ControlDSPFrac: 0.2, Seed: 21,
	}
	nl, err := dsplacer.Generate(spec, dev)
	if err != nil {
		log.Fatal(err)
	}
	st := nl.Stats()
	fmt.Printf("design %q: %d cells, %d DSPs in %d cascade macros\n",
		nl.Name, nl.NumCells(), st.DSP, st.Macros)

	cfg := dsplacer.Config{ClockMHz: spec.FreqMHz, MCFIterations: 12, Rounds: 2, Seed: 3}
	base, err := dsplacer.RunBaseline(dev, nl, dsplacer.ModeVivado, cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := dsplacer.Run(dev, nl, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-10s WNS %+8.3f ns   TNS %+10.3f ns   HPWL %8.0f\n", base.Flow, base.WNS, base.TNS, base.HPWL)
	fmt.Printf("%-10s WNS %+8.3f ns   TNS %+10.3f ns   HPWL %8.0f\n", res.Flow, res.WNS, res.TNS, res.HPWL)
}
