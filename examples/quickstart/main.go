// Quickstart: generate a miniature CNN accelerator, run the full DSPlacer
// flow against the Vivado-like baseline, and print the timing comparison.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dsplacer"
)

func main() {
	dev := dsplacer.NewZCU104()
	nl, err := dsplacer.Generate(dsplacer.SmallSpec(), dev)
	if err != nil {
		log.Fatal(err)
	}
	st := nl.Stats()
	fmt.Printf("design %q: %d LUT, %d FF, %d DSP (%d cascade macros), %d BRAM\n",
		nl.Name, st.LUT, st.FF, st.DSP, st.Macros, st.BRAM)

	cfg := dsplacer.Config{ClockMHz: 200, MCFIterations: 10, Rounds: 1, Seed: 1}

	base, err := dsplacer.RunBaseline(dev, nl, dsplacer.ModeVivado, cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := dsplacer.Run(dev, nl, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-10s %10s %10s %12s\n", "flow", "WNS(ns)", "TNS(ns)", "HPWL")
	fmt.Printf("%-10s %+10.3f %+10.3f %12.0f\n", base.Flow, base.WNS, base.TNS, base.HPWL)
	fmt.Printf("%-10s %+10.3f %+10.3f %12.0f\n", res.Flow, res.WNS, res.TNS, res.HPWL)
	fmt.Printf("\nDSPlacer placed %d datapath DSPs in %.2fs total (DSP placement %.2fs).\n",
		len(res.DatapathDSPs), res.Profile.Total.Seconds(), res.Profile.DSPPlace.Seconds())
}
