package dsplacer

import (
	"context"
	"math"
	"reflect"
	"runtime"
	"testing"

	"dsplacer/internal/assign"
	"dsplacer/internal/core"
	"dsplacer/internal/dspgraph"
	"dsplacer/internal/experiments"
	"dsplacer/internal/fpga"
	"dsplacer/internal/geom"
	"dsplacer/internal/netlist"
)

// syntheticPositions deterministically scatters movable cells over the
// fabric (fixed cells keep their pinned locations) so the assignment solver
// can be exercised without running the full prototype placement.
func syntheticPositions(dev *fpga.Device, nl *netlist.Netlist) []geom.Point {
	pos := make([]geom.Point, nl.NumCells())
	for i, c := range nl.Cells {
		if c.Fixed {
			pos[i] = c.FixedAt
			continue
		}
		pos[i] = geom.Point{
			X: math.Mod(float64(i)*37.3, dev.Width),
			Y: math.Mod(float64(i)*61.7, dev.Height),
		}
	}
	return pos
}

// TestParallelDeterminism asserts the parallel hot paths produce output
// identical to the serial run regardless of worker count: dspgraph.Build
// and assign.Solve execute under GOMAXPROCS=1 and GOMAXPROCS=8 and are
// compared field by field, including exact float equality on the flow cost.
func TestParallelDeterminism(t *testing.T) {
	suite := experiments.NewSuite(experiments.MiniSpecs()[:1])
	nl, err := suite.Netlist(suite.Specs[0])
	if err != nil {
		t.Fatal(err)
	}
	dev := suite.Dev
	ids, err := core.OracleIdentifier{}.Identify(context.Background(), nl)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) < 2 {
		t.Fatalf("mini benchmark has %d datapath DSPs", len(ids))
	}
	pos := syntheticPositions(dev, nl)

	type outcome struct {
		dg  *dspgraph.Graph
		res *assign.Result
	}
	runAt := func(procs int) outcome {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		dg := dspgraph.Build(nl, dspgraph.Config{})
		keep := make(map[int]bool, len(ids))
		for _, c := range ids {
			keep[c] = true
		}
		dp := dg.Filter(func(id int) bool { return keep[id] })
		res, err := assign.Solve(context.Background(), &assign.Problem{
			Device: dev, Netlist: nl, Graph: dp, DSPs: ids,
			Pos: pos, Iterations: 5,
		})
		if err != nil {
			t.Fatalf("solve at GOMAXPROCS=%d: %v", procs, err)
		}
		return outcome{dg: dg, res: res}
	}

	serial := runAt(1)
	parallel := runAt(8)

	if !reflect.DeepEqual(serial.dg, parallel.dg) {
		t.Errorf("dspgraph.Build differs between GOMAXPROCS=1 and 8 (%d vs %d edges)",
			len(serial.dg.Edges), len(parallel.dg.Edges))
	}
	if !reflect.DeepEqual(serial.res.SiteOf, parallel.res.SiteOf) {
		t.Error("assign.Solve site assignment differs between GOMAXPROCS=1 and 8")
	}
	if serial.res.Cost != parallel.res.Cost {
		t.Errorf("assign.Solve cost differs: %v vs %v", serial.res.Cost, parallel.res.Cost)
	}
	if serial.res.Iterations != parallel.res.Iterations || serial.res.Converged != parallel.res.Converged {
		t.Errorf("assign.Solve trajectory differs: (%d,%v) vs (%d,%v)",
			serial.res.Iterations, serial.res.Converged,
			parallel.res.Iterations, parallel.res.Converged)
	}
}

// TestDSPGraphBuildRepeatable guards against map-iteration order leaking
// into the edge list: two builds of the same netlist must be identical.
func TestDSPGraphBuildRepeatable(t *testing.T) {
	suite := experiments.NewSuite(experiments.MiniSpecs()[:1])
	nl, err := suite.Netlist(suite.Specs[0])
	if err != nil {
		t.Fatal(err)
	}
	a := dspgraph.Build(nl, dspgraph.Config{})
	b := dspgraph.Build(nl, dspgraph.Config{})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two builds of the same netlist differ")
	}
}
