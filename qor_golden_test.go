package dsplacer

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dsplacer/internal/core"
	"dsplacer/internal/fpga"
	"dsplacer/internal/gen"
	"dsplacer/internal/metrics"
)

// The golden-QoR harness freezes the placer's quality of results per
// (device, family) cell of the cross-device matrix: HPWL, WNS, cascade
// alignment and the datapath DSP count of one frozen-seed DSPlacer run.
// Any change that moves a metric outside its recorded envelope fails
// tier-1, so a quality regression on any fabric or topology family is
// caught at the PR that introduces it, not three releases later.
//
// After an *intentional* QoR change, regenerate the envelopes with:
//
//	go test -run TestGoldenQoR -update .

var updateGolden = flag.Bool("update", false, "rewrite the golden QoR files from the current run")

// goldenQoR is one recorded (device, family) envelope. Tolerances are
// stored in the file so the envelope's width is reviewed with the values.
type goldenQoR struct {
	Device       string  `json:"device"`
	Family       string  `json:"family"`
	Seed         int64   `json:"seed"`
	HPWL         float64 `json:"hpwl"`
	HPWLRelTol   float64 `json:"hpwl_rel_tol"`
	WNS          float64 `json:"wns_ns"`
	WNSAbsTol    float64 `json:"wns_abs_tol_ns"`
	CascadeAlign float64 `json:"cascade_align"`
	AlignAbsTol  float64 `json:"cascade_align_abs_tol"`
	DatapathDSPs int     `json:"datapath_dsps"`
}

// qorMeasured is what one flow run produced.
type qorMeasured struct {
	HPWL, WNS, CascadeAlign float64
	DatapathDSPs            int
}

// Default envelope widths. The flow is bit-deterministic, so these bound
// intentional-but-small algorithm drift, not run-to-run noise: a change
// that moves HPWL > 2% or WNS > 0.1 ns on any cell must be deliberate.
const (
	goldenHPWLRelTol  = 0.02
	goldenWNSAbsTol   = 0.1
	goldenAlignAbsTol = 0.02
	goldenSeed        = int64(1)
)

func goldenPath(device string, family gen.Family) string {
	return filepath.Join("testdata", "golden", "qor", fmt.Sprintf("%s_%s.json", device, family))
}

// runGoldenCell executes the frozen-seed DSPlacer flow for one cell. The
// config matches the matrix smoke settings: small MCF budget, one round,
// so the whole 16-cell sweep stays inside a tier-1 time budget.
func runGoldenCell(t testing.TB, device string, spec gen.Spec) qorMeasured {
	t.Helper()
	dev := fpga.MustDevice(device)
	nl, err := gen.Generate(spec, dev)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{
		ClockMHz: spec.FreqMHz, Lambda: 100,
		MCFIterations: 6, Rounds: 1, Seed: goldenSeed,
	}
	res, err := core.Run(context.Background(), dev, nl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return qorMeasured{
		HPWL:         res.HPWL,
		WNS:          res.WNS,
		CascadeAlign: metrics.CascadeAlignment(dev, nl, res.SiteOfDSP),
		DatapathDSPs: len(res.DatapathDSPs),
	}
}

// check compares a measurement against the envelope; nil means in-band.
func (g goldenQoR) check(m qorMeasured) error {
	var drifts []string
	if rel := math.Abs(m.HPWL-g.HPWL) / math.Max(math.Abs(g.HPWL), 1); rel > g.HPWLRelTol {
		drifts = append(drifts, fmt.Sprintf("HPWL %.1f vs golden %.1f (rel drift %.3f > %.3f)", m.HPWL, g.HPWL, rel, g.HPWLRelTol))
	}
	if d := math.Abs(m.WNS - g.WNS); d > g.WNSAbsTol {
		drifts = append(drifts, fmt.Sprintf("WNS %.3f ns vs golden %.3f ns (drift %.3f > %.3f)", m.WNS, g.WNS, d, g.WNSAbsTol))
	}
	if d := math.Abs(m.CascadeAlign - g.CascadeAlign); d > g.AlignAbsTol {
		drifts = append(drifts, fmt.Sprintf("cascade alignment %.3f vs golden %.3f (drift %.3f > %.3f)", m.CascadeAlign, g.CascadeAlign, d, g.AlignAbsTol))
	}
	if m.DatapathDSPs != g.DatapathDSPs {
		drifts = append(drifts, fmt.Sprintf("datapath DSP count %d vs golden %d", m.DatapathDSPs, g.DatapathDSPs))
	}
	if len(drifts) == 0 {
		return nil
	}
	return fmt.Errorf("QoR drift on (%s, %s):\n  %s", g.Device, g.Family, strings.Join(drifts, "\n  "))
}

func loadGolden(t *testing.T, device string, family gen.Family) goldenQoR {
	t.Helper()
	b, err := os.ReadFile(goldenPath(device, family))
	if err != nil {
		t.Fatalf("missing golden file (regenerate with go test -run TestGoldenQoR -update .): %v", err)
	}
	var g goldenQoR
	if err := json.Unmarshal(b, &g); err != nil {
		t.Fatal(err)
	}
	return g
}

// TestGoldenQoR is the regression gate: every (device, family) cell of the
// matrix must land inside its recorded envelope. Subtests are named
// <device>/<family>, so `-run TestGoldenQoR/pynq-z2` is the CI smoke slice.
func TestGoldenQoR(t *testing.T) {
	for _, device := range fpga.Names() {
		for _, spec := range gen.FamilySpecs() {
			device, spec := device, spec
			t.Run(device+"/"+spec.Family.String(), func(t *testing.T) {
				t.Parallel()
				m := runGoldenCell(t, device, spec)
				if *updateGolden {
					g := goldenQoR{
						Device: device, Family: spec.Family.String(), Seed: goldenSeed,
						HPWL: m.HPWL, HPWLRelTol: goldenHPWLRelTol,
						WNS: m.WNS, WNSAbsTol: goldenWNSAbsTol,
						CascadeAlign: m.CascadeAlign, AlignAbsTol: goldenAlignAbsTol,
						DatapathDSPs: m.DatapathDSPs,
					}
					b, err := json.MarshalIndent(g, "", "  ")
					if err != nil {
						t.Fatal(err)
					}
					path := goldenPath(device, spec.Family)
					if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
						t.Fatal(err)
					}
					t.Logf("golden updated: %s", path)
					return
				}
				g := loadGolden(t, device, spec.Family)
				if g.Device != device || g.Family != spec.Family.String() || g.Seed != goldenSeed {
					t.Fatalf("golden file identity %+v does not match cell (%s, %s, seed %d)", g, device, spec.Family, goldenSeed)
				}
				if err := g.check(m); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestGoldenQoRDetectsDrift injects QoR drift against a real golden file
// and demands the envelope check fails — proof the harness can actually
// catch a regression, not just that today's numbers happen to agree.
func TestGoldenQoRDetectsDrift(t *testing.T) {
	if *updateGolden {
		t.Skip("golden files being rewritten")
	}
	g := loadGolden(t, "pynq-z2", gen.FamilyCNN)
	exact := qorMeasured{HPWL: g.HPWL, WNS: g.WNS, CascadeAlign: g.CascadeAlign, DatapathDSPs: g.DatapathDSPs}
	if err := g.check(exact); err != nil {
		t.Fatalf("exact measurement rejected: %v", err)
	}
	cases := []struct {
		name    string
		perturb func(*qorMeasured)
	}{
		{"hpwl", func(m *qorMeasured) { m.HPWL *= 1 + 2*g.HPWLRelTol }},
		{"wns", func(m *qorMeasured) { m.WNS += 2 * g.WNSAbsTol }},
		{"cascade-align", func(m *qorMeasured) { m.CascadeAlign -= 2 * g.AlignAbsTol }},
		{"datapath-count", func(m *qorMeasured) { m.DatapathDSPs++ }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := exact
			tc.perturb(&m)
			if err := g.check(m); err == nil {
				t.Fatalf("injected %s drift passed the golden check", tc.name)
			}
		})
	}
}
