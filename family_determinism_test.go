package dsplacer

import (
	"context"
	"reflect"
	"runtime"
	"testing"

	"dsplacer/internal/core"
	"dsplacer/internal/fpga"
	"dsplacer/internal/gen"
)

// TestFamilyFlowDeterminism runs the complete DSPlacer flow for every new
// topology family on every newly registered device at GOMAXPROCS=1 and
// GOMAXPROCS=8 and demands bit-identical output: same cell positions, same
// DSP site assignment, same timing and wirelength numbers. The golden-QoR
// envelopes only hold if worker count can never leak into results, so this
// is the determinism contract behind testdata/golden/qor.
func TestFamilyFlowDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full-flow determinism sweep is not a -short test")
	}
	newDevices := []string{"pynq-z2", "zu15eg", "arria10"}
	newFamilies := []gen.Family{gen.FamilySparseSystolic, gen.FamilyMemMapped, gen.FamilyMultiAccel}

	specOf := make(map[gen.Family]gen.Spec)
	for _, spec := range gen.FamilySpecs() {
		specOf[spec.Family] = spec
	}

	for _, device := range newDevices {
		dev := fpga.MustDevice(device)
		for _, fam := range newFamilies {
			spec, ok := specOf[fam]
			if !ok {
				t.Fatalf("no preset spec for family %s", fam)
			}
			t.Run(device+"/"+fam.String(), func(t *testing.T) {
				nl, err := gen.Generate(spec, dev)
				if err != nil {
					t.Fatal(err)
				}
				cfg := core.Config{
					ClockMHz: spec.FreqMHz, Lambda: 100,
					MCFIterations: 4, Rounds: 1, Seed: 7,
				}
				runAt := func(procs int) *core.Result {
					old := runtime.GOMAXPROCS(procs)
					defer runtime.GOMAXPROCS(old)
					res, err := core.Run(context.Background(), dev, nl, cfg)
					if err != nil {
						t.Fatalf("core.Run at GOMAXPROCS=%d: %v", procs, err)
					}
					res.Profile = core.Profile{} // wall-clock timings legitimately differ
					return res
				}
				serial := runAt(1)
				parallel := runAt(8)

				if !reflect.DeepEqual(serial.Pos, parallel.Pos) {
					t.Error("cell positions differ between GOMAXPROCS=1 and 8")
				}
				if !reflect.DeepEqual(serial.SiteOfDSP, parallel.SiteOfDSP) {
					t.Error("DSP site assignment differs between GOMAXPROCS=1 and 8")
				}
				if !reflect.DeepEqual(serial.DatapathDSPs, parallel.DatapathDSPs) {
					t.Error("datapath DSP extraction differs between GOMAXPROCS=1 and 8")
				}
				if serial.WNS != parallel.WNS || serial.TNS != parallel.TNS {
					t.Errorf("timing differs: WNS %v vs %v, TNS %v vs %v",
						serial.WNS, parallel.WNS, serial.TNS, parallel.TNS)
				}
				if serial.HPWL != parallel.HPWL || serial.RoutedWL != parallel.RoutedWL || serial.Overflow != parallel.Overflow {
					t.Errorf("wirelength/routing differs: HPWL %v vs %v, routed %v vs %v, overflow %d vs %d",
						serial.HPWL, parallel.HPWL, serial.RoutedWL, parallel.RoutedWL,
						serial.Overflow, parallel.Overflow)
				}
			})
		}
	}
}
