# Convenience targets mirroring the commands CI (and the tier-1 verify in
# ROADMAP.md) runs. Everything is stdlib-only Go; no other tooling needed.

.PHONY: build test ci fmt-check serve-smoke bench bench-smoke fuzz-smoke qor-smoke train-smoke profile

# Tier-1 verify (ROADMAP.md).
test:
	go build ./... && go test ./...

# CI-style check: formatting gate, vet, the full test suite under the race
# detector — the parallel hot paths (internal/par users) and the dsplacerd
# service must stay race-free — plus a single-iteration pass over every
# benchmark so bench-only code (bench harnesses, solver warm-start paths)
# cannot bit-rot unnoticed, a short run of every native fuzz target over
# its seed corpus, a golden-QoR smoke on the smallest registered device,
# an end-to-end smoke of the placement service, and the cost-model training
# determinism gate.
ci:
	$(MAKE) fmt-check && go vet ./... && go test -race ./... && $(MAKE) bench-smoke && $(MAKE) fuzz-smoke && $(MAKE) qor-smoke && $(MAKE) serve-smoke && $(MAKE) train-smoke

# Fail if any file is not gofmt-clean (gofmt -l prints offenders).
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# End-to-end service smoke, two stages: (1) one dsplacerd serves on a
# random loopback port, places the quickstart netlist with final DRC gating
# through the real HTTP API, and checks /metrics reports the completed job;
# (2) two dsplacerd processes share a result cache over the cache/remote
# TCP protocol, and the second must serve the first's placement without
# recomputing it (cross-process cache hit).
serve-smoke:
	go run ./cmd/dsplacerd -smoke
	go run ./cmd/dsplacerd -smoke-cluster

# Seconds of coverage-guided fuzzing per target in fuzz-smoke. Raise for a
# real fuzzing session: make fuzz-smoke FUZZTIME=5m
FUZZTIME ?= 10s

# Run every native fuzz target briefly (go test -fuzz accepts one target
# per invocation, hence one line each). The f.Add seeds plus the committed
# corpora under testdata/fuzz always run even with FUZZTIME=0s.
fuzz-smoke:
	go test -run '^$$' -fuzz '^FuzzNetlistJSON$$' -fuzztime $(FUZZTIME) ./internal/netlist/
	go test -run '^$$' -fuzz '^FuzzVerilogWrite$$' -fuzztime $(FUZZTIME) ./internal/verilog/
	go test -run '^$$' -fuzz '^FuzzXDCWrite$$' -fuzztime $(FUZZTIME) ./internal/xdc/
	go test -run '^$$' -fuzz '^FuzzSiteName$$' -fuzztime $(FUZZTIME) ./internal/xdc/
	go test -run '^$$' -fuzz '^FuzzGenerate$$' -fuzztime $(FUZZTIME) ./internal/gen/
	go test -run '^$$' -fuzz '^FuzzNewDevice$$' -fuzztime $(FUZZTIME) ./internal/fpga/
	go test -run '^$$' -fuzz '^FuzzCostModelJSON$$' -fuzztime $(FUZZTIME) ./internal/costmodel/

# Golden-QoR smoke: run the frozen-seed regression harness on the smallest
# registered device (every family, plus the drift-injection self-check).
# The full matrix over all devices runs as part of `go test ./...`; this
# slice is the fast re-check after a QoR-affecting change. Regenerate the
# envelopes after an intentional change: go test -run TestGoldenQoR -update .
qor-smoke:
	go test -run 'TestGoldenQoR/pynq-z2|TestGoldenQoRDetectsDrift' -v .

# Cost-model training gate: regenerate a small frozen-seed corpus, train
# twice, require byte-identical artifacts, and run one placement with the
# model armed (both inference hooks live). Full training: go run ./cmd/train -cost
train-smoke:
	go run ./cmd/train -cost-smoke

build:
	go build ./...

# Compile-and-smoke every benchmark in the repo: one iteration each, with
# allocation counts. Fast; used as a CI gate.
bench-smoke:
	go test -run '^$$' -bench . -benchmem -benchtime=1x ./...

# Hot-path micro-benchmarks with allocation counts (real measurements;
# compare against BENCH_*.json).
bench:
	go test -run '^$$' -bench 'DSPGraphBuild|AssignIteration|MinCostFlow|GlobalPlace|Features' -benchmem .  && \
	go test -run '^$$' -bench . -benchmem ./internal/mcmf/ && \
	go test -run '^$$' -bench 'SubmitThroughput' -benchmem ./internal/jobs/

# CPU-profile one Table II regeneration at mini scale; open with
# `go tool pprof cpu.pb.gz`.
profile:
	go run ./cmd/experiments -mini -table2 -stages -cpuprofile cpu.pb.gz
