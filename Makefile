# Convenience targets mirroring the commands CI (and the tier-1 verify in
# ROADMAP.md) runs. Everything is stdlib-only Go; no other tooling needed.

.PHONY: build test ci bench profile

# Tier-1 verify (ROADMAP.md).
test:
	go build ./... && go test ./...

# CI-style check: vet plus the full test suite under the race detector —
# the parallel hot paths (internal/par users) must stay race-free.
ci:
	go vet ./... && go test -race ./...

build:
	go build ./...

# Hot-path micro-benchmarks with allocation counts.
bench:
	go test -run '^$$' -bench 'DSPGraphBuild|AssignIteration' -benchmem .

# CPU-profile one Table II regeneration at mini scale; open with
# `go tool pprof cpu.pb.gz`.
profile:
	go run ./cmd/experiments -mini -table2 -stages -cpuprofile cpu.pb.gz
