module dsplacer

go 1.22
