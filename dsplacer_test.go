package dsplacer

import "testing"

// TestPublicAPIEndToEnd exercises the re-exported surface exactly as the
// README quickstart does.
func TestPublicAPIEndToEnd(t *testing.T) {
	dev := NewZCU104()
	nl, err := Generate(SmallSpec(), dev)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{ClockMHz: 200, MCFIterations: 6, Rounds: 1, Seed: 1}
	res, err := Run(dev, nl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != "dsplacer" || res.HPWL <= 0 {
		t.Fatalf("unexpected result: %+v", res)
	}
	base, err := RunBaseline(dev, nl, ModeVivado, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if base.Flow != "vivado" {
		t.Fatalf("flow=%q", base.Flow)
	}
}

func TestTableISpecsComplete(t *testing.T) {
	specs := TableISpecs()
	if len(specs) != 5 {
		t.Fatalf("specs=%d", len(specs))
	}
	names := map[string]bool{}
	for _, s := range specs {
		names[s.Name] = true
		if s.DSP <= 0 || s.FreqMHz <= 0 {
			t.Fatalf("bad spec %+v", s)
		}
	}
	for _, want := range []string{"iSmartDNN", "SkyNet", "SkrSkr-1", "SkrSkr-2", "SkrSkr-3"} {
		if !names[want] {
			t.Fatalf("missing %s", want)
		}
	}
}

func TestCustomDevice(t *testing.T) {
	dev, err := NewDevice(DeviceConfig{Name: "tiny", Pattern: "CCDB", Repeats: 2, RegionRows: 1})
	if err != nil {
		t.Fatal(err)
	}
	if dev.NumDSPSites() != 48 {
		t.Fatalf("sites=%d", dev.NumDSPSites())
	}
}
