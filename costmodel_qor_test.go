package dsplacer

import (
	"bytes"
	"context"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"dsplacer/internal/core"
	"dsplacer/internal/costmodel"
	"dsplacer/internal/experiments"
	"dsplacer/internal/fpga"
	"dsplacer/internal/gen"
	"dsplacer/internal/metrics"
)

// The cost-model QoR harness proves the learned early-stop/pruning hooks
// keep every golden-QoR envelope while cutting assignment iterations: the
// model is trained in-process on the pynq-z2 slice of the corpus (frozen
// seed, so the artifact is reproducible), then armed on all 16 (device,
// family) cells of the golden matrix.

var trainedCost struct {
	once sync.Once
	m    *costmodel.Model
	err  error
}

// costCorpusConfig freezes the corpus-generation settings: they match the
// golden-QoR run config so the model trains on the distribution it is
// tested against.
func costCorpusConfig() experiments.TableIIConfig {
	return experiments.TableIIConfig{MCFIterations: 6, Rounds: 1, Seed: goldenSeed}
}

// trainedCostModel trains the shared test model once per process.
func trainedCostModel(t testing.TB) *costmodel.Model {
	t.Helper()
	trainedCost.once.Do(func() {
		corpus, err := experiments.CostCorpus(context.Background(), []string{"pynq-z2"}, nil, costCorpusConfig())
		if err != nil {
			trainedCost.err = err
			return
		}
		trainedCost.m, trainedCost.err = costmodel.Train(corpus, costmodel.TrainConfig{Seed: goldenSeed})
	})
	if trainedCost.err != nil {
		t.Fatal(trainedCost.err)
	}
	return trainedCost.m
}

// runCostCell is runGoldenCell with a cost model armed (nil = off).
func runCostCell(t testing.TB, device string, spec gen.Spec, m *costmodel.Model) (*core.Result, qorMeasured) {
	t.Helper()
	dev := fpga.MustDevice(device)
	nl, err := gen.Generate(spec, dev)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{
		ClockMHz: spec.FreqMHz, Lambda: 100,
		MCFIterations: 6, Rounds: 1, Seed: goldenSeed,
		CostModel: m,
	}
	res, err := core.Run(context.Background(), dev, nl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, qorMeasured{
		HPWL:         res.HPWL,
		WNS:          res.WNS,
		CascadeAlign: metrics.CascadeAlignment(dev, nl, res.SiteOfDSP),
		DatapathDSPs: len(res.DatapathDSPs),
	}
}

// TestCostModelGoldenParity arms the trained model on every cell of the
// golden matrix and demands (a) each model-on result stays inside the
// recorded model-off envelope — the model trades no QoR — and (b) no cell
// spends more iterations model-on than model-off. The golden cells run a
// deliberately tiny 6-iteration budget where every iteration is still
// productive, so this sweep is the safety gate, not the speedup story: the
// ≥20% iteration reduction is measured on the Table II suite at the paper
// budget (EXPERIMENTS.md §"Learned cost model"), where the loop genuinely
// flattens before its budget.
func TestCostModelGoldenParity(t *testing.T) {
	if testing.Short() {
		t.Skip("cost-model golden sweep is not a -short test")
	}
	if *updateGolden {
		t.Skip("golden files being rewritten")
	}
	m := trainedCostModel(t)

	var mu sync.Mutex
	offIters, onIters := 0, 0
	earlyStops := 0
	t.Run("cells", func(t *testing.T) {
		for _, device := range fpga.Names() {
			for _, spec := range gen.FamilySpecs() {
				device, spec := device, spec
				t.Run(device+"/"+spec.Family.String(), func(t *testing.T) {
					t.Parallel()
					off, _ := runCostCell(t, device, spec, nil)
					on, measured := runCostCell(t, device, spec, m)
					g := loadGolden(t, device, spec.Family)
					if err := g.check(measured); err != nil {
						t.Fatalf("model-on run left the golden envelope: %v", err)
					}
					if on.AssignIterations > off.AssignIterations {
						t.Errorf("model-on used more iterations (%d) than model-off (%d)",
							on.AssignIterations, off.AssignIterations)
					}
					mu.Lock()
					offIters += off.AssignIterations
					onIters += on.AssignIterations
					if on.AssignStopReason == "predicted-flat" {
						earlyStops++
					}
					mu.Unlock()
				})
			}
		}
	})
	if t.Failed() {
		return
	}
	if offIters == 0 {
		t.Fatal("model-off sweep reported zero iterations")
	}
	reduction := 1 - float64(onIters)/float64(offIters)
	t.Logf("assign iterations: %d off vs %d on (%.1f%% reduction, %d predicted-flat stops)",
		offIters, onIters, 100*reduction, earlyStops)
	if onIters > offIters {
		t.Errorf("model-on sweep used more iterations (%d) than model-off (%d)", onIters, offIters)
	}
}

// TestCostModelDeterminism re-runs two model-on cells at GOMAXPROCS=1 and 8
// and demands bit-identical output. The prediction hooks run on worker-count
// independent inputs, so the worker pool must not leak into early-stop or
// pruning decisions.
func TestCostModelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("model-on determinism sweep is not a -short test")
	}
	m := trainedCostModel(t)
	specOf := make(map[gen.Family]gen.Spec)
	for _, spec := range gen.FamilySpecs() {
		specOf[spec.Family] = spec
	}
	cells := []struct {
		device string
		family gen.Family
	}{
		{"zcu104", gen.FamilyCNN},
		{"pynq-z2", gen.FamilyMultiAccel},
	}
	for _, cell := range cells {
		cell := cell
		t.Run(cell.device+"/"+cell.family.String(), func(t *testing.T) {
			runAt := func(procs int) *core.Result {
				old := runtime.GOMAXPROCS(procs)
				defer runtime.GOMAXPROCS(old)
				res, _ := runCostCell(t, cell.device, specOf[cell.family], m)
				res.Profile = core.Profile{} // wall-clock timings legitimately differ
				return res
			}
			serial := runAt(1)
			parallel := runAt(8)
			if !reflect.DeepEqual(serial.Pos, parallel.Pos) {
				t.Error("cell positions differ between GOMAXPROCS=1 and 8 with model on")
			}
			if !reflect.DeepEqual(serial.SiteOfDSP, parallel.SiteOfDSP) {
				t.Error("DSP site assignment differs between GOMAXPROCS=1 and 8 with model on")
			}
			if serial.AssignIterations != parallel.AssignIterations ||
				serial.AssignStopReason != parallel.AssignStopReason ||
				serial.AssignPrunedArcs != parallel.AssignPrunedArcs {
				t.Errorf("model decisions differ: %d/%s/%d vs %d/%s/%d",
					serial.AssignIterations, serial.AssignStopReason, serial.AssignPrunedArcs,
					parallel.AssignIterations, parallel.AssignStopReason, parallel.AssignPrunedArcs)
			}
			if serial.WNS != parallel.WNS || serial.HPWL != parallel.HPWL {
				t.Errorf("QoR differs: WNS %v vs %v, HPWL %v vs %v",
					serial.WNS, parallel.WNS, serial.HPWL, parallel.HPWL)
			}
		})
	}
}

// TestCostModelTrainReproducible regenerates the real corpus and retrains
// under the frozen seed: the artifact bytes (and therefore the fingerprint
// that keys caches) must come out identical.
func TestCostModelTrainReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus regeneration is not a -short test")
	}
	m1 := trainedCostModel(t)
	b1, err := m1.Save()
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := experiments.CostCorpus(context.Background(), []string{"pynq-z2"}, nil, costCorpusConfig())
	if err != nil {
		t.Fatal(err)
	}
	m2, err := costmodel.Train(corpus, costmodel.TrainConfig{Seed: goldenSeed})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := m2.Save()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("retraining under the frozen seed changed the artifact (%d vs %d bytes)", len(b1), len(b2))
	}
	if m1.Fingerprint() != m2.Fingerprint() {
		t.Fatalf("fingerprints differ: %s vs %s", m1.Fingerprint(), m2.Fingerprint())
	}
}
